//! The wire protocol: line-delimited JSON requests and responses.
//!
//! Every request is one JSON object on one line, answered by exactly one
//! JSON object on one line. Responses always carry `"ok"`; failures carry
//! `"error"` with a human-readable message. The document model is
//! [`molseq_sweep::JsonValue`] — the same hand-rolled, stub-compatible
//! JSON layer the sweep artifacts use — so the protocol needs no
//! deserialization support from the vendored serde.
//!
//! Operations:
//!
//! * `submit` — a batch of sweep cells over one program: a tagged
//!   `program` object carrying either reaction text in the
//!   [`Crn`](molseq_crn::Crn) `Display`/`FromStr` format
//!   (`{"crn": "..."}`) or netlist source compiled server-side
//!   (`{"netlist": "..."}`; see `molseq_netlist`). The legacy bare
//!   `network` string field is still accepted on input as a `crn`
//!   program. Netlist text is validated **at parse time**: a malformed
//!   netlist is rejected with line/column info before any admission,
//!   compilation, or worker involvement. Replies with a job id.
//! * `status` — queued/running/done counts for a job.
//! * `fetch` — the job's completed rows from a given index, optionally
//!   blocking until more are ready. Rows stream back in **index order**
//!   (the contiguous completed prefix), so what a streaming client
//!   accumulates is byte-identical to a batch fetch after completion.
//! * `cancel` — raise the job's [`CancelToken`](molseq_sweep::CancelToken).
//! * `stats` — server counters (cache hits/misses, queue depths,
//!   per-tenant rejections), sorted by name.
//! * `shutdown` — stop accepting and drain.
//!
//! Result rows deliberately carry **no wall-clock readings** — only the
//! deterministic fields (status, detail, metrics, final state) — so two
//! runs of the same submission are byte-comparable regardless of worker
//! count or machine.

use molseq_sweep::{JobRecord, JobStatus, JsonValue, SweepSummary};
use std::fmt;

/// Why a wire message could not be understood.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    msg: String,
}

impl ProtocolError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        ProtocolError { msg: msg.into() }
    }

    /// The human-readable failure description.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for ProtocolError {}

/// Which simulator a submission runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Exact stochastic simulation (Gillespie SSA).
    Ssa,
    /// Deterministic mass-action ODE integration.
    Ode,
    /// Hybrid ODE/SSA multiscale simulation: fast reversible pairs as a
    /// continuous subsystem, slow reactions as exact discrete events.
    Hybrid,
    /// Explicit tau-leaping: Poisson batches of reactions per leap, with
    /// an exact-step fallback when propensities are small.
    Tau,
}

impl Method {
    /// The wire name (`"ssa"` / `"ode"` / `"hybrid"` / `"tau"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Ssa => "ssa",
            Method::Ode => "ode",
            Method::Hybrid => "hybrid",
            Method::Tau => "tau",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] for anything but `"ssa"`, `"ode"`, `"hybrid"` or
    /// `"tau"`.
    pub fn parse(s: &str) -> Result<Self, ProtocolError> {
        match s {
            "ssa" => Ok(Method::Ssa),
            "ode" => Ok(Method::Ode),
            "hybrid" => Ok(Method::Hybrid),
            "tau" => Ok(Method::Tau),
            other => Err(ProtocolError::new(format!("unknown method `{other}`"))),
        }
    }

    /// Whether the server has a lock-step batched engine for this method.
    /// ODE, SSA and tau-leap lanes advance together bit-identically to
    /// their scalar runs; the hybrid engine has no batched counterpart.
    #[must_use]
    pub fn supports_batch(self) -> bool {
        !matches!(self, Method::Hybrid)
    }
}

/// What a submission runs: the tagged `program` field of a submit
/// request.
///
/// Both forms resolve to a [`Crn`](molseq_crn::Crn) server-side and share
/// the compiled-network cache (keyed by `Crn::structural_hash`), so two
/// identical netlists — or a netlist and the reaction text it lowers to —
/// hit the same cache entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Program {
    /// Reaction text in the `Crn` `Display`/`FromStr` format.
    Crn(String),
    /// Netlist source text (modules; the last module is the top). The
    /// server elaborates and lowers it with the default clock, and the
    /// compiled system's initial state seeds the run (the request's
    /// `init` entries override by species name).
    Netlist(String),
}

/// One sweep cell of a submission: a label plus an optional rate-constant
/// override (both of `k_fast`/`k_slow`, or neither — the server rejects a
/// half-specified pair).
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Human-readable cell label, carried into result rows.
    pub label: String,
    /// Fast-category rate constant override.
    pub k_fast: Option<f64>,
    /// Slow-category rate constant override.
    pub k_slow: Option<f64>,
}

/// A batch-simulation submission.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// The tenant this job is accounted to (admission control and budgets
    /// are per tenant).
    pub tenant: String,
    /// What to run: reaction text or netlist source.
    pub program: Program,
    /// Initial amounts by species name; unmentioned species start at 0.
    pub init: Vec<(String, f64)>,
    /// Which simulator to run.
    pub method: Method,
    /// Simulated end time.
    pub t_end: f64,
    /// Trace recording interval (simulator default when absent).
    pub record_interval: Option<f64>,
    /// The sweep master seed; each cell's seed derives from it and the
    /// cell index exactly as [`molseq_sweep::derive_seed`] does.
    pub seed: u64,
    /// Timed injections `(time, species name, amount)`.
    pub injections: Vec<(f64, String, f64)>,
    /// Lock-step batch width: consecutive runs of this many cells advance
    /// together through the batched kinetics engine (ODE, SSA or
    /// tau-leap; the hybrid method has no batched engine and rejects
    /// explicit widths above 1). `Some(1)` forces every cell onto the
    /// scalar path; `None` (field omitted on the wire) lets the server
    /// pick a width from the submitted cell count. Results are
    /// bit-identical at every width, so the choice only moves wall time
    /// and the `batch_width`/`lanes_retired` metric columns.
    pub batch: Option<usize>,
    /// The cells to run, in index order.
    pub cells: Vec<CellSpec>,
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a new job.
    Submit(Box<SubmitRequest>),
    /// Query a job's progress.
    Status {
        /// The job to query.
        job_id: String,
    },
    /// Fetch completed rows.
    Fetch {
        /// The job to read from.
        job_id: String,
        /// First row index wanted.
        from: usize,
        /// Block until at least one new row (or a terminal state) is
        /// available.
        wait: bool,
    },
    /// Cancel a job.
    Cancel {
        /// The job to cancel.
        job_id: String,
    },
    /// Read the server counters.
    Stats,
    /// Stop the server.
    Shutdown,
}

/// One completed cell as it travels over the wire: the deterministic
/// subset of a sweep cell (no wall clock).
#[derive(Debug, Clone, PartialEq)]
pub struct CellRow {
    /// The cell's index in the submission.
    pub index: usize,
    /// The cell's label.
    pub label: String,
    /// How the cell ended.
    pub status: JobStatus,
    /// Failure detail (empty for `Ok`).
    pub detail: String,
    /// Recorded metrics, in a fixed deterministic order.
    pub metrics: Vec<(String, f64)>,
    /// Final state vector, in species registration order (empty unless
    /// the cell succeeded).
    pub final_state: Vec<f64>,
}

fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn num(v: f64) -> JsonValue {
    JsonValue::from_f64(v)
}

fn string(s: &str) -> JsonValue {
    JsonValue::String(s.to_owned())
}

fn get_str(v: &JsonValue, key: &str) -> Result<String, ProtocolError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| ProtocolError::new(format!("missing string field `{key}`")))
}

fn get_f64(v: &JsonValue, key: &str) -> Result<f64, ProtocolError> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| ProtocolError::new(format!("missing numeric field `{key}`")))
}

fn get_usize(v: &JsonValue, key: &str) -> Result<usize, ProtocolError> {
    let n = get_f64(v, key)?;
    if n.fract() != 0.0 || !(0.0..9.0e15).contains(&n) {
        return Err(ProtocolError::new(format!(
            "field `{key}` is not a non-negative integer"
        )));
    }
    Ok(n as usize)
}

fn opt_f64(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(JsonValue::as_f64)
}

impl Request {
    /// Renders this request as one compact JSON line (no trailing
    /// newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let doc = match self {
            Request::Submit(req) => {
                let cells: Vec<JsonValue> = req
                    .cells
                    .iter()
                    .map(|c| {
                        let mut members = vec![("label", string(&c.label))];
                        if let Some(k) = c.k_fast {
                            members.push(("k_fast", num(k)));
                        }
                        if let Some(k) = c.k_slow {
                            members.push(("k_slow", num(k)));
                        }
                        obj(members)
                    })
                    .collect();
                let init: Vec<JsonValue> = req
                    .init
                    .iter()
                    .map(|(name, amount)| JsonValue::Array(vec![string(name), num(*amount)]))
                    .collect();
                let injections: Vec<JsonValue> = req
                    .injections
                    .iter()
                    .map(|(time, name, amount)| {
                        JsonValue::Array(vec![num(*time), string(name), num(*amount)])
                    })
                    .collect();
                let program = match &req.program {
                    Program::Crn(text) => obj(vec![("crn", string(text))]),
                    Program::Netlist(text) => obj(vec![("netlist", string(text))]),
                };
                let mut members = vec![
                    ("op", string("submit")),
                    ("tenant", string(&req.tenant)),
                    ("program", program),
                    ("init", JsonValue::Array(init)),
                    ("method", string(req.method.as_str())),
                    ("t_end", num(req.t_end)),
                ];
                if let Some(dt) = req.record_interval {
                    members.push(("record_interval", num(dt)));
                }
                members.push(("seed", num(req.seed as f64)));
                if !req.injections.is_empty() {
                    members.push(("injections", JsonValue::Array(injections)));
                }
                if let Some(width) = req.batch {
                    members.push(("batch", num(width as f64)));
                }
                members.push(("cells", JsonValue::Array(cells)));
                obj(members)
            }
            Request::Status { job_id } => {
                obj(vec![("op", string("status")), ("job", string(job_id))])
            }
            Request::Fetch { job_id, from, wait } => obj(vec![
                ("op", string("fetch")),
                ("job", string(job_id)),
                ("from", num(*from as f64)),
                ("wait", JsonValue::Bool(*wait)),
            ]),
            Request::Cancel { job_id } => {
                obj(vec![("op", string("cancel")), ("job", string(job_id))])
            }
            Request::Stats => obj(vec![("op", string("stats"))]),
            Request::Shutdown => obj(vec![("op", string("shutdown"))]),
        };
        let mut out = String::new();
        doc.render_compact(&mut out);
        out
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] on malformed JSON, an unknown `op`, or missing
    /// fields.
    pub fn parse(line: &str) -> Result<Request, ProtocolError> {
        let doc = JsonValue::parse(line)
            .map_err(|e| ProtocolError::new(format!("malformed request: {e}")))?;
        let op = get_str(&doc, "op")?;
        match op.as_str() {
            "submit" => Ok(Request::Submit(Box::new(parse_submit(&doc)?))),
            "status" => Ok(Request::Status {
                job_id: get_str(&doc, "job")?,
            }),
            "fetch" => Ok(Request::Fetch {
                job_id: get_str(&doc, "job")?,
                from: get_usize(&doc, "from").unwrap_or(0),
                wait: matches!(doc.get("wait"), Some(JsonValue::Bool(true))),
            }),
            "cancel" => Ok(Request::Cancel {
                job_id: get_str(&doc, "job")?,
            }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtocolError::new(format!("unknown op `{other}`"))),
        }
    }
}

/// Resolves the tagged `program` field (or the legacy bare `network`
/// string). Netlist text is parsed and elaborated here, so a malformed
/// netlist fails with line/column info before any worker — the same
/// fail-at-the-wire posture as the `t_end` and rate-override checks.
fn parse_program_field(doc: &JsonValue) -> Result<Program, ProtocolError> {
    match (doc.get("program"), doc.get("network")) {
        (Some(_), Some(_)) => Err(ProtocolError::new(
            "give either `program` or the legacy `network` field, not both",
        )),
        (None, None) => Err(ProtocolError::new(
            "missing `program` (an object tagged {\"crn\": text} or {\"netlist\": text})",
        )),
        (None, Some(_)) => Ok(Program::Crn(get_str(doc, "network")?)),
        (Some(p), None) => match (p.get("crn"), p.get("netlist")) {
            (Some(text), None) => {
                let text = text
                    .as_str()
                    .ok_or_else(|| ProtocolError::new("`program.crn` is not a string"))?;
                Ok(Program::Crn(text.to_owned()))
            }
            (None, Some(text)) => {
                let text = text
                    .as_str()
                    .ok_or_else(|| ProtocolError::new("`program.netlist` is not a string"))?;
                molseq_netlist::parse_netlist(text).map_err(|e| {
                    ProtocolError::new(format!("`program.netlist` does not parse: {e}"))
                })?;
                Ok(Program::Netlist(text.to_owned()))
            }
            _ => Err(ProtocolError::new(
                "`program` must carry exactly one of `crn` or `netlist`",
            )),
        },
    }
}

fn parse_submit(doc: &JsonValue) -> Result<SubmitRequest, ProtocolError> {
    let init = match doc.get("init") {
        None => Vec::new(),
        Some(v) => {
            v.as_array()
                .ok_or_else(|| ProtocolError::new("`init` is not an array"))?
                .iter()
                .map(|pair| {
                    let items = pair.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                        ProtocolError::new("init entry is not a [name, amount] pair")
                    })?;
                    let name = items[0]
                        .as_str()
                        .ok_or_else(|| ProtocolError::new("init species name is not a string"))?;
                    let amount = items[1]
                        .as_f64()
                        .ok_or_else(|| ProtocolError::new("init amount is not a number"))?;
                    Ok((name.to_owned(), amount))
                })
                .collect::<Result<_, ProtocolError>>()?
        }
    };
    let injections = match doc.get("injections") {
        None => Vec::new(),
        Some(v) => v
            .as_array()
            .ok_or_else(|| ProtocolError::new("`injections` is not an array"))?
            .iter()
            .map(|triple| {
                let items = triple.as_array().filter(|a| a.len() == 3).ok_or_else(|| {
                    ProtocolError::new("injection entry is not a [time, species, amount] triple")
                })?;
                let time = items[0]
                    .as_f64()
                    .ok_or_else(|| ProtocolError::new("injection time is not a number"))?;
                let name = items[1]
                    .as_str()
                    .ok_or_else(|| ProtocolError::new("injection species is not a string"))?;
                let amount = items[2]
                    .as_f64()
                    .ok_or_else(|| ProtocolError::new("injection amount is not a number"))?;
                Ok((time, name.to_owned(), amount))
            })
            .collect::<Result<_, ProtocolError>>()?,
    };
    let cells = doc
        .get("cells")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| ProtocolError::new("missing `cells` array"))?
        .iter()
        .map(|cell| {
            let label = get_str(cell, "label")?;
            let k_fast = opt_f64(cell, "k_fast");
            let k_slow = opt_f64(cell, "k_slow");
            // a non-finite override would silently poison every
            // propensity downstream; reject it at the wire like the
            // other numeric fields
            for (name, value) in [("k_fast", k_fast), ("k_slow", k_slow)] {
                if value.is_some_and(|k| !k.is_finite()) {
                    return Err(ProtocolError::new(format!(
                        "cell `{label}`: `{name}` override must be finite"
                    )));
                }
            }
            Ok(CellSpec {
                label,
                k_fast,
                k_slow,
            })
        })
        .collect::<Result<Vec<_>, ProtocolError>>()?;
    let seed = match doc.get("seed") {
        None => 0,
        Some(_) => {
            let n = get_f64(doc, "seed")?;
            if n.fract() != 0.0 || !(0.0..9.0e15).contains(&n) {
                return Err(ProtocolError::new("`seed` is not a non-negative integer"));
            }
            n as u64
        }
    };
    let batch = match doc.get("batch") {
        None => None,
        Some(_) => {
            let n = get_usize(doc, "batch")?;
            if n == 0 {
                return Err(ProtocolError::new("`batch` must be at least 1"));
            }
            Some(n)
        }
    };
    // reject an unusable horizon at the wire, before any admission or
    // compilation work: NaN travels as JSON null (caught as a missing
    // numeric field above), but ±inf, zero and negative times parse fine
    // and would otherwise reach the workers
    let t_end = get_f64(doc, "t_end")?;
    if !t_end.is_finite() || t_end <= 0.0 {
        return Err(ProtocolError::new("`t_end` must be a finite positive time"));
    }
    let program = parse_program_field(doc)?;
    Ok(SubmitRequest {
        tenant: get_str(doc, "tenant")?,
        program,
        init,
        method: Method::parse(&get_str(doc, "method")?)?,
        t_end,
        record_interval: opt_f64(doc, "record_interval"),
        seed,
        injections,
        batch,
        cells,
    })
}

impl CellRow {
    /// This row as a JSON value (the element type of fetch responses).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("index", num(self.index as f64)),
            ("label", string(&self.label)),
            ("status", string(self.status.as_str())),
            ("detail", string(&self.detail)),
            (
                "metrics",
                JsonValue::Array(
                    self.metrics
                        .iter()
                        .map(|(name, v)| JsonValue::Array(vec![string(name), num(*v)]))
                        .collect(),
                ),
            ),
            (
                "final_state",
                JsonValue::Array(self.final_state.iter().map(|&v| num(v)).collect()),
            ),
        ])
    }

    /// Parses a row from a fetch response element.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] on a value that does not match the row schema.
    pub fn from_json(v: &JsonValue) -> Result<CellRow, ProtocolError> {
        let status_name = get_str(v, "status")?;
        let status = JobStatus::parse(&status_name)
            .ok_or_else(|| ProtocolError::new(format!("unknown status `{status_name}`")))?;
        let metrics = v
            .get("metrics")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ProtocolError::new("missing `metrics` array"))?
            .iter()
            .map(|pair| {
                let items = pair.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                    ProtocolError::new("metric entry is not a [name, value] pair")
                })?;
                let name = items[0]
                    .as_str()
                    .ok_or_else(|| ProtocolError::new("metric name is not a string"))?;
                // null is how non-finite values travel, as in the artifacts
                let value = match &items[1] {
                    JsonValue::Null => f64::NAN,
                    other => other
                        .as_f64()
                        .ok_or_else(|| ProtocolError::new("metric value is not a number"))?,
                };
                Ok((name.to_owned(), value))
            })
            .collect::<Result<_, ProtocolError>>()?;
        let final_state = v
            .get("final_state")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ProtocolError::new("missing `final_state` array"))?
            .iter()
            .map(|x| {
                x.as_f64()
                    .ok_or_else(|| ProtocolError::new("final_state entry is not a number"))
            })
            .collect::<Result<_, ProtocolError>>()?;
        Ok(CellRow {
            index: get_usize(v, "index")?,
            label: get_str(v, "label")?,
            status,
            detail: get_str(v, "detail")?,
            metrics,
            final_state,
        })
    }

    /// This row as a sweep [`JobRecord`] with a zero wall clock, so sets
    /// of fetched rows can be aggregated into a [`SweepSummary`] and fed
    /// through the persisted-artifact / trend pipeline.
    #[must_use]
    pub fn to_job_record(&self) -> JobRecord {
        JobRecord {
            index: self.index,
            label: self.label.clone(),
            status: self.status,
            wall_secs: 0.0,
            detail: self.detail.clone(),
            metrics: self.metrics.clone(),
        }
    }
}

/// Aggregates fetched rows into a [`SweepSummary`] with zeroed wall
/// clocks, suitable for `to_json`/`to_csv` persistence and `trend`
/// comparison. Because every field is deterministic, two summaries built
/// from the same submission are byte-identical however many workers the
/// server ran.
#[must_use]
pub fn rows_to_summary(rows: &[CellRow], workers: usize) -> SweepSummary {
    let jobs: Vec<JobRecord> = rows.iter().map(CellRow::to_job_record).collect();
    let count = |status: JobStatus| jobs.iter().filter(|j| j.status == status).count();
    SweepSummary {
        total: jobs.len(),
        succeeded: count(JobStatus::Ok),
        failed: count(JobStatus::Failed),
        panicked: count(JobStatus::Panicked),
        budget_exceeded: count(JobStatus::BudgetExceeded),
        cancelled: count(JobStatus::Cancelled),
        workers,
        wall_secs: 0.0,
        min_job_secs: 0.0,
        mean_job_secs: 0.0,
        max_job_secs: 0.0,
        jobs,
    }
}

/// Wraps a `stats` counter snapshot in a one-row [`SweepSummary`] (label
/// `server-stats`), so server counters land in the same persisted-summary
/// pipeline the experiments use and `trend` can gate on them. Counters
/// must already be sorted by name — the server emits them that way.
#[must_use]
pub fn stats_summary(counters: &[(String, f64)]) -> SweepSummary {
    let row = CellRow {
        index: 0,
        label: "server-stats".to_owned(),
        status: JobStatus::Ok,
        detail: String::new(),
        metrics: counters.to_vec(),
        final_state: Vec::new(),
    };
    rows_to_summary(std::slice::from_ref(&row), 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_submit() -> SubmitRequest {
        SubmitRequest {
            tenant: "acme".to_owned(),
            program: Program::Crn("X -> Y @fast\n".to_owned()),
            init: vec![("X".to_owned(), 10.0)],
            method: Method::Ssa,
            t_end: 5.0,
            record_interval: Some(1.0),
            seed: 42,
            injections: vec![(2.0, "X".to_owned(), 3.0)],
            batch: Some(1),
            cells: vec![
                CellSpec {
                    label: "rep=0".to_owned(),
                    k_fast: None,
                    k_slow: None,
                },
                CellSpec {
                    label: "k=500".to_owned(),
                    k_fast: Some(500.0),
                    k_slow: Some(1.0),
                },
            ],
        }
    }

    #[test]
    fn requests_round_trip_through_their_lines() {
        let requests = vec![
            Request::Submit(Box::new(sample_submit())),
            Request::Status {
                job_id: "j-1".to_owned(),
            },
            Request::Fetch {
                job_id: "j-1".to_owned(),
                from: 3,
                wait: true,
            },
            Request::Cancel {
                job_id: "j-2".to_owned(),
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in requests {
            let line = req.to_line();
            assert!(!line.contains('\n'), "one line per message: {line}");
            assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn submit_defaults_apply_when_fields_are_absent() {
        // the legacy bare `network` field still reads as a crn program
        let line = "{\"op\":\"submit\",\"tenant\":\"t\",\"network\":\"X -> Y @fast\",\
                    \"method\":\"ode\",\"t_end\":1,\"cells\":[{\"label\":\"only\"}]}";
        let Request::Submit(req) = Request::parse(line).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(req.program, Program::Crn("X -> Y @fast".to_owned()));
        assert_eq!(req.seed, 0);
        assert!(req.init.is_empty());
        assert!(req.injections.is_empty());
        assert_eq!(req.record_interval, None);
        assert_eq!(req.method, Method::Ode);
        assert_eq!(req.cells[0].k_fast, None);
        // an omitted width is *not* a width of 1: it asks the server to
        // pick one from the cell count
        assert_eq!(req.batch, None);
    }

    #[test]
    fn netlist_programs_round_trip() {
        let mut submit = sample_submit();
        submit.program = Program::Netlist(
            "module m {\n  input x\n  reg d\n  d <= x\n  output y = d\n}\n".to_owned(),
        );
        submit.init = Vec::new();
        submit.injections = Vec::new();
        let line = Request::Submit(Box::new(submit.clone())).to_line();
        assert!(line.contains("\"netlist\""), "{line}");
        assert_eq!(
            Request::parse(&line).unwrap(),
            Request::Submit(Box::new(submit))
        );
    }

    #[test]
    fn malformed_netlists_fail_at_parse_time_with_position() {
        let line = "{\"op\":\"submit\",\"tenant\":\"t\",\
                    \"program\":{\"netlist\":\"module m {\\n  wire y = nope\\n}\\n\"},\
                    \"method\":\"ode\",\"t_end\":1,\"cells\":[{\"label\":\"c\"}]}";
        let err = Request::parse(line).unwrap_err();
        assert!(err.message().contains("netlist"), "{err}");
        assert!(err.message().contains("line 2"), "{err}");
        assert!(err.message().contains("column 12"), "{err}");
    }

    #[test]
    fn program_field_must_be_exactly_one_form() {
        let both_fields = "{\"op\":\"submit\",\"tenant\":\"t\",\"network\":\"X -> Y @fast\",\
                           \"program\":{\"crn\":\"X -> Y @fast\"},\
                           \"method\":\"ode\",\"t_end\":1,\"cells\":[{\"label\":\"c\"}]}";
        let err = Request::parse(both_fields).unwrap_err();
        assert!(err.message().contains("not both"), "{err}");

        let neither = "{\"op\":\"submit\",\"tenant\":\"t\",\
                       \"method\":\"ode\",\"t_end\":1,\"cells\":[{\"label\":\"c\"}]}";
        let err = Request::parse(neither).unwrap_err();
        assert!(err.message().contains("program"), "{err}");

        let both_tags = "{\"op\":\"submit\",\"tenant\":\"t\",\
                         \"program\":{\"crn\":\"X -> Y @fast\",\"netlist\":\"module m {\\n}\\n\"},\
                         \"method\":\"ode\",\"t_end\":1,\"cells\":[{\"label\":\"c\"}]}";
        let err = Request::parse(both_tags).unwrap_err();
        assert!(err.message().contains("exactly one"), "{err}");
    }

    #[test]
    fn batch_width_round_trips_and_zero_is_rejected() {
        let mut submit = sample_submit();
        submit.batch = Some(4);
        let line = Request::Submit(Box::new(submit.clone())).to_line();
        assert_eq!(
            Request::parse(&line).unwrap(),
            Request::Submit(Box::new(submit))
        );
        let zero = "{\"op\":\"submit\",\"tenant\":\"t\",\"network\":\"X -> Y @fast\",\
                    \"method\":\"ode\",\"t_end\":1,\"batch\":0,\"cells\":[{\"label\":\"c\"}]}";
        let err = Request::parse(zero).unwrap_err();
        assert!(err.message().contains("batch"), "{err}");
    }

    #[test]
    fn malformed_requests_are_rejected_with_context() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"op\":\"explode\"}").is_err());
        let missing_cells =
            "{\"op\":\"submit\",\"tenant\":\"t\",\"network\":\"\",\"method\":\"ssa\",\"t_end\":1}";
        let err = Request::parse(missing_cells).unwrap_err();
        assert!(err.message().contains("cells"), "{err}");
        assert!(Method::parse("nrm").is_err());
    }

    #[test]
    fn every_method_round_trips_through_its_wire_name() {
        for method in [Method::Ssa, Method::Ode, Method::Hybrid, Method::Tau] {
            assert_eq!(Method::parse(method.as_str()).unwrap(), method);
        }
    }

    #[test]
    fn only_the_hybrid_method_lacks_a_batched_engine() {
        assert!(Method::Ode.supports_batch());
        assert!(Method::Ssa.supports_batch());
        assert!(Method::Tau.supports_batch());
        assert!(!Method::Hybrid.supports_batch());
    }

    #[test]
    fn unusable_t_end_is_rejected_at_parse_time() {
        let line = |t_end: &str| {
            format!(
                "{{\"op\":\"submit\",\"tenant\":\"t\",\"network\":\"X -> Y @fast\",\
                 \"method\":\"ssa\",\"t_end\":{t_end},\"cells\":[{{\"label\":\"c\"}}]}}"
            )
        };
        for bad in ["-1", "0", "1e999", "-1e999"] {
            let err = Request::parse(&line(bad)).unwrap_err();
            assert!(err.message().contains("t_end"), "{bad}: {err}");
        }
        // NaN cannot travel as a JSON number: the renderer emits null,
        // which the parser rejects as a missing numeric field — still
        // before any worker sees the job
        let mut submit = sample_submit();
        submit.t_end = f64::NAN;
        let err = Request::parse(&Request::Submit(Box::new(submit)).to_line()).unwrap_err();
        assert!(err.message().contains("t_end"), "{err}");
        assert!(Request::parse(&line("5")).is_ok());
    }

    #[test]
    fn non_finite_rate_overrides_are_rejected_at_parse_time() {
        let line = |k: &str| {
            format!(
                "{{\"op\":\"submit\",\"tenant\":\"t\",\"network\":\"X -> Y @fast\",\
                 \"method\":\"ssa\",\"t_end\":1,\
                 \"cells\":[{{\"label\":\"c\",\"k_fast\":{k},\"k_slow\":1}}]}}"
            )
        };
        for bad in ["1e999", "-1e999"] {
            let err = Request::parse(&line(bad)).unwrap_err();
            assert!(err.message().contains("k_fast"), "{bad}: {err}");
            assert!(err.message().contains("`c`"), "{bad}: {err}");
        }
        assert!(Request::parse(&line("500")).is_ok());
    }

    #[test]
    fn cell_rows_round_trip_including_non_finite_metrics() {
        let row = CellRow {
            index: 3,
            label: "rep=3".to_owned(),
            status: JobStatus::BudgetExceeded,
            detail: "steps 11 > limit 10".to_owned(),
            metrics: vec![
                ("final_time".to_owned(), 4.5),
                ("residual".to_owned(), f64::NAN),
                ("ssa_events".to_owned(), 120.0),
            ],
            final_state: vec![0.0, 2.0, 8.0],
        };
        let parsed = CellRow::from_json(&row.to_json()).unwrap();
        assert_eq!(parsed.index, row.index);
        assert_eq!(parsed.status, row.status);
        assert_eq!(parsed.final_state, row.final_state);
        assert!(parsed.metrics[1].1.is_nan());
        assert_eq!(parsed.metrics[0], row.metrics[0]);
        assert_eq!(parsed.metrics[2], row.metrics[2]);
    }

    #[test]
    fn rows_to_summary_counts_by_status_and_zeroes_clocks() {
        let row = |index, status| CellRow {
            index,
            label: format!("r{index}"),
            status,
            detail: String::new(),
            metrics: vec![("ssa_events".to_owned(), 10.0)],
            final_state: Vec::new(),
        };
        let rows = vec![
            row(0, JobStatus::Ok),
            row(1, JobStatus::Cancelled),
            row(2, JobStatus::BudgetExceeded),
        ];
        let summary = rows_to_summary(&rows, 4);
        assert_eq!(summary.total, 3);
        assert_eq!(summary.succeeded, 1);
        assert_eq!(summary.cancelled, 1);
        assert_eq!(summary.budget_exceeded, 1);
        assert_eq!(summary.wall_secs, 0.0);
        assert_eq!(summary.jobs[1].wall_secs, 0.0);
        // metric columns come from the shared sorted-union helper
        assert_eq!(summary.metric_columns(), vec!["ssa_events"]);
    }

    #[test]
    fn stats_summary_is_one_ok_row_with_counter_metrics() {
        let counters = vec![
            ("cache_hits".to_owned(), 3.0),
            ("cache_misses".to_owned(), 1.0),
        ];
        let s = stats_summary(&counters);
        assert_eq!((s.total, s.succeeded), (1, 1));
        assert_eq!(s.jobs[0].label, "server-stats");
        assert_eq!(s.jobs[0].metrics, counters);
        assert_eq!(s.metric_columns(), vec!["cache_hits", "cache_misses"]);
    }
}
