//! The `serve` binary: boots a batch-simulation server and blocks until
//! a client sends the wire `shutdown` op.
//!
//! Prints exactly one `listening on ADDR` line to stdout once the socket
//! is bound, so scripts binding port 0 can discover the ephemeral port.

use molseq_serve::{Server, ServerConfig, TenantPolicy};
use molseq_sweep::JobBudget;
use std::io::Write;

const USAGE: &str = "\
usage: serve [options]

options:
  --addr HOST:PORT     bind address (default 127.0.0.1:0; port 0 = ephemeral)
  --workers N          worker threads (default: one per hardware thread)
  --cache-capacity N   bound the compiled-network cache to N structures,
                       evicting least-recently-used (default unbounded)
  --max-inflight N     per-tenant in-flight job limit (default 4)
  --max-steps N        per-cell simulator step budget (default unlimited)
  --budget-tenant NAME=STEPS
                       step-budget one tenant (repeatable); other limits
                       follow the default policy
  --help               print this help
";

fn fail(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        fail(&format!("{flag} needs a value"));
    };
    value
        .parse()
        .unwrap_or_else(|_| fail(&format!("{flag} got a malformed value `{value}`")))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut config = ServerConfig::default();
    let mut policy = TenantPolicy::default();
    let mut budget_tenants: Vec<(String, u64)> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                let Some(addr) = args.next() else {
                    fail("--addr needs a value");
                };
                config = config.with_addr(addr);
            }
            "--workers" => config = config.with_workers(parse_number("--workers", args.next())),
            "--cache-capacity" => {
                let capacity: usize = parse_number("--cache-capacity", args.next());
                if capacity == 0 {
                    fail("--cache-capacity must be at least 1");
                }
                config = config.with_cache_capacity(capacity);
            }
            "--max-inflight" => {
                policy.max_inflight = parse_number("--max-inflight", args.next());
            }
            "--max-steps" => {
                policy.budget =
                    JobBudget::unlimited().with_max_steps(parse_number("--max-steps", args.next()));
            }
            "--budget-tenant" => {
                let Some(value) = args.next() else {
                    fail("--budget-tenant needs a NAME=STEPS value");
                };
                let Some((name, steps)) = value.split_once('=') else {
                    fail(&format!("--budget-tenant got `{value}`, want NAME=STEPS"));
                };
                let steps = steps.parse().unwrap_or_else(|_| {
                    fail(&format!("--budget-tenant steps `{steps}` malformed"))
                });
                budget_tenants.push((name.to_owned(), steps));
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument `{other}`")),
        }
    }
    config = config.with_default_policy(policy);
    for (name, steps) in budget_tenants {
        let strict = TenantPolicy {
            budget: JobBudget::unlimited().with_max_steps(steps),
            ..policy
        };
        config = config.with_tenant_policy(name, strict);
    }
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: cannot start: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.addr());
    let _ = std::io::stdout().flush();
    server.join();
}
