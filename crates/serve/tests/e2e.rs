//! End-to-end acceptance tests: real TCP servers, the reference client,
//! and the wire protocol — no in-process shortcuts.
//!
//! The three claims under test:
//!
//! 1. the same submission produces **byte-identical** results whatever
//!    the server's worker count, and a resubmission **hits the
//!    compiled-CRN cache**;
//! 2. a tenant exceeding its step budget is cut **deterministically**
//!    without disturbing other tenants' results;
//! 3. admission control rejects a tenant at its in-flight limit, and
//!    cancellation both stops the job and frees the slot.

use molseq_serve::{
    rows_to_summary, CellRow, CellSpec, Client, ClientError, Method, Program, Server, ServerConfig,
    SubmitRequest, TenantPolicy,
};
use molseq_sweep::{JobBudget, JobStatus};

/// A stochastic decay sweep: `amplitude` copies of X decaying to Y,
/// `reps` seeds, plus one cell with an explicit rate override so the
/// rebind path is always exercised.
fn decay_submit(tenant: &str, amplitude: f64, reps: usize) -> SubmitRequest {
    let mut cells: Vec<CellSpec> = (0..reps)
        .map(|i| CellSpec {
            label: format!("rep={i}"),
            k_fast: None,
            k_slow: None,
        })
        .collect();
    cells.push(CellSpec {
        label: "k=500/2".to_owned(),
        k_fast: Some(500.0),
        k_slow: Some(2.0),
    });
    SubmitRequest {
        tenant: tenant.to_owned(),
        program: Program::Crn("X -> Y @slow".to_owned()),
        init: vec![("X".to_owned(), amplitude)],
        method: Method::Ssa,
        t_end: 1.0e6,
        record_interval: None,
        seed: 11,
        injections: vec![(0.5, "X".to_owned(), 3.0)],
        batch: Some(1),
        cells,
    }
}

/// Renders rows plus their aggregate summary to the exact bytes a client
/// would persist (worker count pinned so only genuine result fields can
/// differ).
fn render(rows: &[CellRow]) -> String {
    let mut out = String::new();
    for row in rows {
        row.to_json().render_compact(&mut out);
        out.push('\n');
    }
    out.push_str(&rows_to_summary(rows, 1).to_json());
    out
}

fn counter(stats: &[(String, f64)], name: &str) -> f64 {
    stats
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("counter `{name}` missing from {stats:?}"))
}

#[test]
fn same_submission_is_byte_identical_across_worker_counts_and_hits_the_cache() {
    let serial = Server::start(ServerConfig::default().with_workers(1)).expect("server boots");
    let threaded = Server::start(ServerConfig::default().with_workers(4)).expect("server boots");
    let mut on_serial = Client::connect(serial.addr()).expect("client connects");
    let mut on_threaded = Client::connect(threaded.addr()).expect("client connects");
    let request = decay_submit("acme", 40.0, 6);

    let first = on_serial.submit(&request).expect("submission is valid");
    assert_eq!(first.cells, 7);
    assert_eq!(first.species, vec!["X".to_owned(), "Y".to_owned()]);
    let rows_serial = on_serial.fetch_all(&first.job_id).expect("job completes");
    assert_eq!(rows_serial.len(), 7);
    assert!(rows_serial.iter().all(|r| r.status == JobStatus::Ok));
    // all 43 molecules (40 initial + 3 injected) end up decayed into Y
    for row in &rows_serial {
        assert_eq!(row.final_state, vec![0.0, 43.0], "{}", row.label);
    }

    // (a) byte-identical results, independent of worker count
    let ack = on_threaded.submit(&request).expect("submission is valid");
    let rows_threaded = on_threaded.fetch_all(&ack.job_id).expect("job completes");
    assert_eq!(render(&rows_serial), render(&rows_threaded));

    // (b) resubmitting reuses the compiled network: one miss, then hits
    let stats = on_serial.stats().expect("stats round trip");
    assert_eq!(counter(&stats, "cache_misses"), 1.0);
    assert_eq!(counter(&stats, "cache_hits"), 0.0);
    let again = on_serial.submit(&request).expect("resubmission is valid");
    let rows_again = on_serial.fetch_all(&again.job_id).expect("job completes");
    assert_eq!(render(&rows_serial), render(&rows_again));
    let stats = on_serial.stats().expect("stats round trip");
    assert_eq!(counter(&stats, "cache_misses"), 1.0);
    assert_eq!(counter(&stats, "cache_hits"), 1.0);
    assert_eq!(counter(&stats, "jobs_completed"), 2.0);
    assert_eq!(counter(&stats, "cells_ok"), 14.0);

    // non-waiting page reads after completion reproduce the stream
    let mut paged = Vec::new();
    loop {
        let page = on_serial
            .fetch(&first.job_id, paged.len(), false)
            .expect("fetch round trip");
        paged.extend(page.rows);
        if page.done && paged.len() >= page.next {
            break;
        }
    }
    assert_eq!(paged, rows_serial);

    on_serial.shutdown().expect("shutdown round trip");
    on_threaded.shutdown().expect("shutdown round trip");
    serial.join();
    threaded.join();
}

#[test]
fn budget_cuts_one_tenant_deterministically_without_disturbing_another() {
    let strict = TenantPolicy {
        max_inflight: 4,
        budget: JobBudget::unlimited().with_max_steps(25),
    };
    let config = ServerConfig::default()
        .with_workers(4)
        .with_tenant_policy("greedy", strict);
    let server = Server::start(config).expect("server boots");
    let mut greedy = Client::connect(server.addr()).expect("client connects");
    let mut modest = Client::connect(server.addr()).expect("client connects");

    // the greedy job needs ~203 SSA events, far past its 25-step budget;
    // the modest job runs the same shape within an unlimited budget
    let greedy_ack = greedy
        .submit(&decay_submit("greedy", 200.0, 4))
        .expect("submission is valid");
    let modest_ack = modest
        .submit(&decay_submit("modest", 30.0, 4))
        .expect("submission is valid");

    let greedy_rows = greedy.fetch_all(&greedy_ack.job_id).expect("job completes");
    for row in &greedy_rows {
        assert_eq!(row.status, JobStatus::BudgetExceeded, "{}", row.label);
        assert!(row.detail.contains("steps"), "detail: {}", row.detail);
        assert!(row.final_state.is_empty());
    }

    let modest_rows = modest.fetch_all(&modest_ack.job_id).expect("job completes");
    assert!(modest_rows.iter().all(|r| r.status == JobStatus::Ok));

    // isolation: the modest tenant's rows match a run on an idle server
    // with no budget-constrained neighbour, byte for byte
    let alone = Server::start(ServerConfig::default().with_workers(4)).expect("server boots");
    let mut solo = Client::connect(alone.addr()).expect("client connects");
    let solo_ack = solo
        .submit(&decay_submit("modest", 30.0, 4))
        .expect("submission is valid");
    let solo_rows = solo.fetch_all(&solo_ack.job_id).expect("job completes");
    assert_eq!(render(&modest_rows), render(&solo_rows));

    let stats = greedy.stats().expect("stats round trip");
    assert_eq!(counter(&stats, "cells_budget_exceeded"), 5.0);
    assert_eq!(counter(&stats, "cells_ok"), 5.0);
    // both jobs used the same network: the second submission was a hit
    assert_eq!(counter(&stats, "cache_misses"), 1.0);
    assert_eq!(counter(&stats, "cache_hits"), 1.0);

    greedy.shutdown().expect("shutdown round trip");
    server.join();
    solo.shutdown().expect("shutdown round trip");
    alone.join();
}

#[test]
fn admission_control_rejects_at_the_inflight_limit_and_cancel_frees_the_slot() {
    let one_at_a_time = TenantPolicy {
        max_inflight: 1,
        budget: JobBudget::unlimited(),
    };
    // four workers: both long cells and the small job run concurrently,
    // so the small job cannot queue behind the work it must not disturb
    let config = ServerConfig::default()
        .with_workers(4)
        .with_tenant_policy("busy", one_at_a_time);
    let server = Server::start(config).expect("server boots");
    let mut busy = Client::connect(server.addr()).expect("client connects");
    let mut other = Client::connect(server.addr()).expect("client connects");

    // a job that cannot finish on its own: the two-way flip keeps firing
    // SSA events for the whole (astronomical) horizon, so it is
    // guaranteed to still be running through the admission and
    // cancellation checks below; cancellation cuts it at the next event
    let long = SubmitRequest {
        tenant: "busy".to_owned(),
        program: Program::Crn("X -> Y @slow\nY -> X @slow".to_owned()),
        init: vec![("X".to_owned(), 100.0)],
        method: Method::Ssa,
        t_end: 1.0e9,
        record_interval: None,
        seed: 3,
        injections: vec![],
        batch: Some(1),
        cells: (0..2)
            .map(|i| CellSpec {
                label: format!("long rep={i}"),
                k_fast: None,
                k_slow: None,
            })
            .collect(),
    };
    let running = busy.submit(&long).expect("first job is admitted");

    // the tenant is at its in-flight limit: the next submission bounces
    let rejected = busy.submit(&long);
    match rejected {
        Err(ClientError::Server(msg)) => {
            assert!(msg.contains("in-flight"), "rejection message: {msg}");
        }
        other => panic!("expected a server rejection, got {other:?}"),
    }

    // an unrelated tenant is not affected by the rejection or the load
    let small = other
        .submit(&decay_submit("calm", 20.0, 2))
        .expect("other tenant admitted");
    let small_rows = other.fetch_all(&small.job_id).expect("job completes");
    assert!(small_rows.iter().all(|r| r.status == JobStatus::Ok));

    // cancel the long job: every cell ends Cancelled, cooperatively
    busy.cancel(&running.job_id).expect("cancel round trip");
    let cancelled_rows = busy.fetch_all(&running.job_id).expect("job drains");
    assert_eq!(cancelled_rows.len(), 2);
    for row in &cancelled_rows {
        assert_eq!(row.status, JobStatus::Cancelled, "{}", row.label);
        assert!(!row.detail.is_empty());
    }
    let status = busy.status(&running.job_id).expect("status round trip");
    assert_eq!(status.state, "cancelled");
    assert_eq!(status.completed, 2);

    // the cancellation released the tenant's slot
    let after = busy.submit(&decay_submit("busy", 10.0, 1));
    assert!(after.is_ok(), "slot should be free again: {after:?}");
    busy.fetch_all(&after.unwrap().job_id)
        .expect("job completes");

    let stats = busy.stats().expect("stats round trip");
    assert_eq!(counter(&stats, "tenant_rejections"), 1.0);
    assert_eq!(counter(&stats, "rejections.busy"), 1.0);
    assert_eq!(counter(&stats, "jobs_cancelled"), 1.0);
    assert_eq!(counter(&stats, "cells_cancelled"), 2.0);

    busy.shutdown().expect("shutdown round trip");
    server.join();
}

/// [`render`] with the batching bookkeeping metrics dropped: those two
/// columns legitimately differ across widths, everything else must be
/// byte-identical.
fn render_without_batch_columns(rows: &[CellRow]) -> String {
    let stripped: Vec<CellRow> = rows
        .iter()
        .map(|row| {
            let mut row = row.clone();
            row.metrics
                .retain(|(name, _)| name != "batch_width" && name != "lanes_retired");
            row
        })
        .collect();
    render(&stripped)
}

#[test]
fn batched_ode_submission_matches_scalar_byte_for_byte() {
    let server = Server::start(ServerConfig::default().with_workers(2)).expect("server boots");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let mut submit = SubmitRequest {
        tenant: "acme".to_owned(),
        program: Program::Crn("X -> Y @fast\nY -> Z @slow".to_owned()),
        init: vec![("X".to_owned(), 8.0)],
        method: Method::Ode,
        t_end: 4.0,
        record_interval: Some(0.5),
        seed: 7,
        injections: vec![(1.0, "X".to_owned(), 2.0)],
        batch: Some(1),
        cells: (0..5)
            .map(|i| CellSpec {
                label: format!("ratio={}", 100 * (i + 1)),
                k_fast: Some((100 * (i + 1)) as f64),
                k_slow: Some(1.0),
            })
            .collect(),
    };
    let scalar_ack = client.submit(&submit).expect("scalar submission is valid");
    let scalar_rows = client.fetch_all(&scalar_ack.job_id).expect("job completes");
    assert!(scalar_rows.iter().all(|r| r.status == JobStatus::Ok));

    // widths that divide the job, leave a short tail group, and exceed
    // the cell count entirely: all bit-identical to the scalar rows
    for batch in [2usize, 4, 8] {
        submit.batch = Some(batch);
        let ack = client.submit(&submit).expect("batched submission is valid");
        let rows = client.fetch_all(&ack.job_id).expect("job completes");
        assert_eq!(
            render_without_batch_columns(&scalar_rows),
            render_without_batch_columns(&rows),
            "batch {batch}"
        );
    }

    client.shutdown().expect("shutdown round trip");
    server.join();
}

#[test]
fn batched_stochastic_submissions_match_scalar_byte_for_byte() {
    // the tentpole claim over the wire: SSA and tau-leap lanes advanced
    // in lock step are bit-identical to the scalar path, per lane, so
    // the streamed rows cannot change with the requested width
    let server = Server::start(ServerConfig::default().with_workers(2)).expect("server boots");
    let mut client = Client::connect(server.addr()).expect("client connects");
    for method in [Method::Ssa, Method::Tau] {
        let mut submit = SubmitRequest {
            method,
            ..decay_submit("acme", 40.0, 6)
        };
        let scalar_ack = client.submit(&submit).expect("scalar submission is valid");
        let scalar_rows = client.fetch_all(&scalar_ack.job_id).expect("job completes");
        assert!(
            scalar_rows.iter().all(|r| r.status == JobStatus::Ok),
            "{method:?}"
        );

        // a dividing width, a short tail group, and a width past the
        // cell count — all three must reproduce the scalar rows
        for batch in [2usize, 4, 8] {
            submit.batch = Some(batch);
            let ack = client.submit(&submit).expect("batched submission is valid");
            let rows = client.fetch_all(&ack.job_id).expect("job completes");
            assert_eq!(
                render_without_batch_columns(&scalar_rows),
                render_without_batch_columns(&rows),
                "{method:?} batch {batch}"
            );
        }
    }
    client.shutdown().expect("shutdown round trip");
    server.join();
}

#[test]
fn omitted_batch_width_is_auto_selected_and_matches_an_explicit_width() {
    // leaving `batch` off the wire lets the server pick a width from the
    // submitted cell count; the rows — including the `batch_width`
    // bookkeeping column — must be byte-identical to pinning that width
    // explicitly
    let server = Server::start(ServerConfig::default().with_workers(2)).expect("server boots");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let mut submit = decay_submit("acme", 40.0, 6); // 7 cells, under the auto cap
    submit.batch = None;
    let auto_ack = client
        .submit(&submit)
        .expect("auto-width submission is valid");
    let auto_rows = client.fetch_all(&auto_ack.job_id).expect("job completes");
    assert!(auto_rows.iter().all(|r| r.status == JobStatus::Ok));

    submit.batch = Some(7);
    let pinned_ack = client.submit(&submit).expect("pinned submission is valid");
    let pinned_rows = client.fetch_all(&pinned_ack.job_id).expect("job completes");
    assert_eq!(render(&auto_rows), render(&pinned_rows));

    // hybrid has no batched engine, so an omitted width resolves to the
    // scalar path instead of a group — and is accepted, not rejected
    let hybrid = SubmitRequest {
        method: Method::Hybrid,
        program: Program::Crn("0 -> R @fast\nR + X -> X @slow\nX -> Y @slow".to_owned()),
        t_end: 2.0,
        batch: None,
        ..decay_submit("acme", 20.0, 1)
    };
    let ack = client
        .submit(&hybrid)
        .expect("auto width degrades to scalar for hybrid");
    let rows = client.fetch_all(&ack.job_id).expect("job completes");
    assert!(rows.iter().all(|r| r.status == JobStatus::Ok));

    client.shutdown().expect("shutdown round trip");
    server.join();
}

#[test]
fn batch_rejections_distinguish_bad_widths_from_unsupported_methods() {
    let server = Server::start(ServerConfig::default().with_workers(1)).expect("server boots");
    let mut client = Client::connect(server.addr()).expect("client connects");

    // an unusable width is a parse-layer error whatever the method
    let mut zero_width = decay_submit("acme", 10.0, 1);
    zero_width.batch = Some(0);
    let rejected = client.submit(&zero_width);
    assert!(
        matches!(rejected, Err(ClientError::Server(ref msg)) if msg.contains("at least 1")),
        "{rejected:?}"
    );

    // a fine width on a method with no batched engine is a different,
    // method-aware error that names the offender and the alternatives
    let hybrid_grouped = SubmitRequest {
        method: Method::Hybrid,
        program: Program::Crn("0 -> R @fast\nR + X -> X @slow\nX -> Y @slow".to_owned()),
        t_end: 2.0,
        batch: Some(2),
        ..decay_submit("acme", 20.0, 3)
    };
    let rejected = client.submit(&hybrid_grouped);
    match rejected {
        Err(ClientError::Server(msg)) => {
            assert!(msg.contains("hybrid"), "message: {msg}");
            assert!(msg.contains("batchable methods"), "message: {msg}");
        }
        other => panic!("expected a server rejection, got {other:?}"),
    }

    client.shutdown().expect("shutdown round trip");
    server.join();
}

#[test]
fn bounded_cache_evicts_and_recompiles_identically() {
    let config = ServerConfig::default()
        .with_workers(1)
        .with_cache_capacity(1);
    let server = Server::start(config).expect("server boots");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let first = decay_submit("acme", 10.0, 1);
    let mut other = decay_submit("acme", 10.0, 1);
    other.program = Program::Crn("X -> Y @slow\nY -> Z @slow".to_owned());

    // first → miss; other → miss + evicts first; first again → miss +
    // evicts other, and — the point — reproduces the original rows
    let mut renders = Vec::new();
    for submit in [&first, &other, &first] {
        let ack = client.submit(submit).expect("submission is valid");
        let rows = client.fetch_all(&ack.job_id).expect("job completes");
        renders.push(render(&rows));
    }
    assert_eq!(renders[0], renders[2], "recompiled rows match the original");

    let stats = client.stats().expect("stats round trip");
    assert_eq!(counter(&stats, "cache_misses"), 3.0);
    assert_eq!(counter(&stats, "cache_hits"), 0.0);
    assert_eq!(counter(&stats, "cache_evictions"), 2.0);

    client.shutdown().expect("shutdown round trip");
    server.join();
}

#[test]
fn a_panicking_job_leaves_the_server_serving_other_tenants() {
    // Fault injection: the worker that finishes the marked cell panics
    // while holding the job's progress lock — the worst-case poisoning
    // failure a real panic could produce. The wounded job must settle as
    // Failed and every other tenant must keep getting served.
    let config = ServerConfig::default()
        .with_workers(2)
        .with_fault_injection("kaboom");
    let server = Server::start(config).expect("server boots");
    let mut victim = Client::connect(server.addr()).expect("client connects");
    let mut bystander = Client::connect(server.addr()).expect("client connects");

    let mut doomed = decay_submit("victim", 10.0, 1);
    doomed.cells[0].label = "kaboom".to_owned();
    let doomed_ack = victim.submit(&doomed).expect("submission is valid");

    // poll with non-waiting fetches: the panic happens before the job
    // ever signals progress, so recovery fires on first contact with the
    // poisoned lock
    let rows = loop {
        let page = victim
            .fetch(&doomed_ack.job_id, 0, false)
            .expect("connection survives the panic");
        if page.done {
            break page.rows;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    assert_eq!(rows.len(), 2);
    assert!(
        rows.iter()
            .any(|r| r.status == JobStatus::Failed && r.detail.contains("panicked")),
        "rows: {rows:?}"
    );
    let status = victim
        .status(&doomed_ack.job_id)
        .expect("status round trip");
    assert_eq!(status.state, "done");
    assert_eq!(status.completed, 2);

    // another tenant is served as if nothing happened
    let calm = bystander
        .submit(&decay_submit("calm", 20.0, 2))
        .expect("other tenant admitted");
    let calm_rows = bystander.fetch_all(&calm.job_id).expect("job completes");
    assert!(calm_rows.iter().all(|r| r.status == JobStatus::Ok));

    // and the victim tenant's slot was handed back: it can submit again
    let retry = victim
        .submit(&decay_submit("victim", 5.0, 1))
        .expect("slot was released");
    let retry_rows = victim.fetch_all(&retry.job_id).expect("job completes");
    assert!(retry_rows.iter().all(|r| r.status == JobStatus::Ok));

    victim.shutdown().expect("shutdown round trip");
    server.join();
}

#[test]
fn hybrid_submission_is_byte_identical_across_worker_counts() {
    // the clocked-motif shape the hybrid engine targets: a fast
    // zeroth-order/first-order pair holds R at its set point while the
    // slow computation reaction fires discretely
    let submit = SubmitRequest {
        tenant: "acme".to_owned(),
        program: Program::Crn("0 -> R @fast\nR + X -> X @slow\nX -> Y @slow".to_owned()),
        init: vec![("X".to_owned(), 50.0)],
        method: Method::Hybrid,
        t_end: 2.0,
        record_interval: Some(0.25),
        seed: 13,
        injections: vec![],
        batch: Some(1),
        cells: (0..4)
            .map(|i| CellSpec {
                label: format!("rep={i}"),
                k_fast: None,
                k_slow: None,
            })
            .collect(),
    };
    let serial = Server::start(ServerConfig::default().with_workers(1)).expect("server boots");
    let threaded = Server::start(ServerConfig::default().with_workers(4)).expect("server boots");
    let mut on_serial = Client::connect(serial.addr()).expect("client connects");
    let mut on_threaded = Client::connect(threaded.addr()).expect("client connects");

    let a = on_serial.submit(&submit).expect("submission is valid");
    let rows_serial = on_serial.fetch_all(&a.job_id).expect("job completes");
    assert!(rows_serial.iter().all(|r| r.status == JobStatus::Ok));
    let b = on_threaded.submit(&submit).expect("submission is valid");
    let rows_threaded = on_threaded.fetch_all(&b.job_id).expect("job completes");
    assert_eq!(render(&rows_serial), render(&rows_threaded));

    // the hybrid engine actually engaged: continuous steps were taken
    let fast_steps = rows_serial[0]
        .metrics
        .iter()
        .find(|(name, _)| name == "hybrid_fast_steps")
        .map(|(_, v)| *v)
        .expect("hybrid metric column present");
    assert!(fast_steps > 0.0);

    on_serial.shutdown().expect("shutdown round trip");
    on_threaded.shutdown().expect("shutdown round trip");
    serial.join();
    threaded.join();
}

#[test]
fn malformed_and_unknown_requests_fail_cleanly_without_killing_the_connection() {
    let server = Server::start(ServerConfig::default().with_workers(1)).expect("server boots");
    let mut client = Client::connect(server.addr()).expect("client connects");

    let unknown = client.status("j-999");
    assert!(matches!(unknown, Err(ClientError::Server(ref msg)) if msg.contains("unknown job")));

    let bad_network = client.submit(&SubmitRequest {
        program: Program::Crn("not a network ->".to_owned()),
        ..decay_submit("acme", 10.0, 1)
    });
    assert!(matches!(bad_network, Err(ClientError::Server(_))));

    let bad_species = client.submit(&SubmitRequest {
        init: vec![("Zz".to_owned(), 1.0)],
        ..decay_submit("acme", 10.0, 1)
    });
    assert!(
        matches!(bad_species, Err(ClientError::Server(ref msg)) if msg.contains("unknown species"))
    );

    // a failed submission must not leak the reserved admission slot
    for _ in 0..6 {
        let ok = client
            .submit(&decay_submit("acme", 5.0, 1))
            .expect("valid submissions still admitted");
        client.fetch_all(&ok.job_id).expect("job completes");
    }

    client.shutdown().expect("shutdown round trip");
    server.join();
}

#[test]
fn unusable_horizons_and_rate_overrides_are_rejected_before_any_worker_runs() {
    let server = Server::start(ServerConfig::default().with_workers(1)).expect("server boots");
    let mut client = Client::connect(server.addr()).expect("client connects");

    // a horizon the integrators cannot reach dies at the protocol layer
    for bad in [-1.0, 0.0] {
        let rejected = client.submit(&SubmitRequest {
            t_end: bad,
            ..decay_submit("acme", 10.0, 1)
        });
        assert!(
            matches!(rejected, Err(ClientError::Server(ref msg)) if msg.contains("t_end")),
            "t_end {bad}: {rejected:?}"
        );
    }
    // a NaN horizon cannot even be carried by JSON: it serialises as
    // null and is rejected as a missing numeric field — still before
    // any plan is built
    let rejected = client.submit(&SubmitRequest {
        t_end: f64::NAN,
        ..decay_submit("acme", 10.0, 1)
    });
    assert!(
        matches!(rejected, Err(ClientError::Server(_))),
        "{rejected:?}"
    );

    // non-finite numbers the Rust client cannot serialise still arrive
    // over the raw wire (`1e999` parses to infinity): an infinite
    // horizon and an infinite per-cell rate override must both bounce
    // at the protocol layer with errors naming the field
    {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;
        let stream = TcpStream::connect(server.addr()).expect("raw connection");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let base = concat!(
            "{\"op\": \"submit\", \"tenant\": \"acme\", \"network\": \"X -> Y @slow\", ",
            "\"init\": [[\"X\", 10]], \"method\": \"ssa\", \"seed\": 1, \"injections\": [], "
        );
        for (raw, field) in [
            (
                format!("{base}\"t_end\": 1e999, \"cells\": [{{\"label\": \"c\"}}]}}\n"),
                "t_end",
            ),
            (
                format!(
                    "{base}\"t_end\": 5, \"cells\": [{{\"label\": \"c\", \"k_fast\": 1e999}}]}}\n"
                ),
                "k_fast",
            ),
        ] {
            let mut writer = &stream;
            writer.write_all(raw.as_bytes()).expect("line written");
            writer.flush().expect("line flushed");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("reply arrives");
            assert!(
                reply.contains("\"ok\":false") && reply.contains(field),
                "reply for bad {field}: {reply}"
            );
        }
    }

    // nothing above was admitted, let alone run
    let stats = client.stats().expect("stats round trip");
    assert_eq!(counter(&stats, "jobs_submitted"), 0.0);
    assert_eq!(counter(&stats, "cells_ok"), 0.0);

    client.shutdown().expect("shutdown round trip");
    server.join();
}

#[test]
fn a_server_that_dies_between_submit_and_fetch_surfaces_connection_closed() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{Shutdown, TcpListener};

    // a stand-in for a server killed mid-conversation: accept one
    // connection, answer the submission, then go away. The write side is
    // half-closed (instead of dropping the socket) and the read side
    // keeps draining, so the client deterministically sees a clean EOF
    // rather than racing a TCP reset.
    let listener = TcpListener::bind("127.0.0.1:0").expect("listener binds");
    let addr = listener.local_addr().expect("addr");
    let dying = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("one connection");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("submit arrives");
        let mut writer = &stream;
        writer
            .write_all(
                b"{\"ok\": true, \"job\": \"j-1\", \"cells\": 1, \"species\": [\"X\", \"Y\"]}\n",
            )
            .expect("ack written");
        writer.flush().expect("ack flushed");
        stream.shutdown(Shutdown::Write).expect("server goes away");
        // drain whatever the client still sends so its writes don't RST
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });

    let mut client = Client::connect(addr).expect("client connects");
    let ack = client
        .submit(&decay_submit("acme", 10.0, 1))
        .expect("submission acknowledged before the server dies");

    // the fetch after the server's death must be the distinct
    // connection-closed error, not a generic I/O fault
    let lost = client.fetch(&ack.job_id, 0, true);
    match lost {
        Err(ClientError::ConnectionClosed) => {}
        other => panic!("expected ClientError::ConnectionClosed, got {other:?}"),
    }
    // the stand-in drains until the client hangs up — hang up first
    drop(client);
    dying.join().expect("stand-in exits");
}

/// The netlist front-end over the wire: a circuit that exists only as
/// netlist text — never hand-assembled in Rust — compiles server-side,
/// runs byte-identically at any worker count, shares a cache entry with
/// a submission of its own lowered CRN text, and keeps distinct cache
/// entries from other netlists. Malformed netlists bounce at the
/// protocol layer with their source position, before any worker runs.
#[test]
fn netlist_programs_run_over_the_wire_and_cache_by_structure() {
    let seqdet = include_str!("../../../examples/netlists/seqdet.nl");
    let mavg2 = include_str!("../../../examples/netlists/mavg2.nl");

    let submit_netlist = |src: &str| SubmitRequest {
        tenant: "hdl".to_owned(),
        program: Program::Netlist(src.to_owned()),
        init: vec![],
        method: Method::Ode,
        t_end: 40.0,
        record_interval: None,
        seed: 5,
        injections: vec![],
        batch: Some(1),
        cells: vec![
            CellSpec {
                label: "default".to_owned(),
                k_fast: None,
                k_slow: None,
            },
            CellSpec {
                label: "k=500/2".to_owned(),
                k_fast: Some(500.0),
                k_slow: Some(2.0),
            },
        ],
    };

    let serial = Server::start(ServerConfig::default().with_workers(1)).expect("server boots");
    let threaded = Server::start(ServerConfig::default().with_workers(4)).expect("server boots");
    let mut on_serial = Client::connect(serial.addr()).expect("client connects");
    let mut on_threaded = Client::connect(threaded.addr()).expect("client connects");

    // (a) a malformed netlist dies at the protocol layer, with its
    // source position, before admission — exercised over the raw wire
    {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;
        let stream = TcpStream::connect(serial.addr()).expect("raw connection");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let raw = concat!(
            "{\"op\": \"submit\", \"tenant\": \"hdl\", ",
            "\"program\": {\"netlist\": \"module m {\\n  wire y = nope\\n}\"}, ",
            "\"init\": [], \"method\": \"ode\", \"t_end\": 5, \"seed\": 1, ",
            "\"injections\": [], \"cells\": [{\"label\": \"c\"}]}\n"
        );
        let mut writer = &stream;
        writer.write_all(raw.as_bytes()).expect("line written");
        writer.flush().expect("line flushed");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply arrives");
        assert!(
            reply.contains("\"ok\":false") && reply.contains("line 2"),
            "bad netlist reply: {reply}"
        );
    }
    let stats = on_serial.stats().expect("stats round trip");
    assert_eq!(counter(&stats, "jobs_submitted"), 0.0);

    // (b) the sequence detector runs byte-identically at 1 vs 4 workers
    let request = submit_netlist(seqdet);
    let ack_serial = on_serial.submit(&request).expect("netlist admitted");
    assert!(
        ack_serial.species.iter().any(|s| s == "s2.R"),
        "state registers are visible as species: {:?}",
        ack_serial.species
    );
    let rows_serial = on_serial.fetch_all(&ack_serial.job_id).expect("completes");
    assert!(rows_serial.iter().all(|r| r.status == JobStatus::Ok));
    let ack_threaded = on_threaded.submit(&request).expect("netlist admitted");
    let rows_threaded = on_threaded
        .fetch_all(&ack_threaded.job_id)
        .expect("completes");
    assert_eq!(render(&rows_serial), render(&rows_threaded));

    // (c) submitting the netlist's own lowered CRN text (with the
    // compiled initial state spelled out) is the *same* submission:
    // byte-identical rows and a cache hit, not a new entry
    let system = molseq_sync::compile_netlist_source(seqdet, molseq_sync::ClockSpec::default())
        .expect("netlist compiles locally");
    let crn_text = system.crn().to_string();
    let init_state = system.initial_state();
    let init: Vec<(String, f64)> = (0..system.crn().species_count())
        .map(molseq_crn::SpeciesId::from_index)
        .filter(|&id| init_state.get(id) != 0.0)
        .map(|id| (system.crn().species_name(id).to_owned(), init_state.get(id)))
        .collect();
    let stats = on_serial.stats().expect("stats round trip");
    assert_eq!(counter(&stats, "cache_misses"), 1.0);
    let as_crn = SubmitRequest {
        program: Program::Crn(crn_text),
        init,
        ..submit_netlist(seqdet)
    };
    let ack_crn = on_serial.submit(&as_crn).expect("lowered CRN admitted");
    assert_eq!(ack_crn.species, ack_serial.species);
    let rows_crn = on_serial.fetch_all(&ack_crn.job_id).expect("completes");
    assert_eq!(render(&rows_serial), render(&rows_crn));
    let stats = on_serial.stats().expect("stats round trip");
    assert_eq!(counter(&stats, "cache_misses"), 1.0);
    assert_eq!(counter(&stats, "cache_hits"), 1.0);

    // (d) a different netlist gets its own cache entry; resubmitting the
    // first is still a hit
    let other = on_serial
        .submit(&submit_netlist(mavg2))
        .expect("second netlist admitted");
    on_serial.fetch_all(&other.job_id).expect("completes");
    let again = on_serial.submit(&request).expect("resubmission admitted");
    let rows_again = on_serial.fetch_all(&again.job_id).expect("completes");
    assert_eq!(render(&rows_serial), render(&rows_again));
    let stats = on_serial.stats().expect("stats round trip");
    assert_eq!(counter(&stats, "cache_misses"), 2.0);
    assert_eq!(counter(&stats, "cache_hits"), 2.0);

    on_serial.shutdown().expect("shutdown round trip");
    on_threaded.shutdown().expect("shutdown round trip");
    serial.join();
    threaded.join();
}
