//! The module constructors.

use molseq_crn::{Crn, CrnError, Rate, SpeciesId};
use std::error::Error;
use std::fmt;

/// Errors specific to module construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModuleError {
    /// A module was asked to scale by an unsupported rational.
    UnsupportedScale {
        /// Numerator requested.
        p: u32,
        /// Denominator requested.
        q: u32,
        /// Why it is unsupported.
        reason: &'static str,
    },
    /// A module needs at least one input or output and received none.
    MissingOperand {
        /// Which module complained.
        module: &'static str,
    },
    /// An input or output species id was invalid for the network.
    Network(CrnError),
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleError::UnsupportedScale { p, q, reason } => {
                write!(f, "cannot scale by {p}/{q}: {reason}")
            }
            ModuleError::MissingOperand { module } => {
                write!(f, "module `{module}` needs at least one operand")
            }
            ModuleError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl Error for ModuleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModuleError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CrnError> for ModuleError {
    fn from(e: CrnError) -> Self {
        ModuleError::Network(e)
    }
}

/// Moves the quantity of `from` to `to`: `X → Y` (fast).
///
/// # Errors
///
/// Returns [`ModuleError::Network`] if the ids are invalid.
///
/// # Examples
///
/// ```
/// use molseq_crn::Crn;
/// use molseq_modules::{run_to_completion, transfer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut crn = Crn::new();
/// let x = crn.species("x");
/// let y = crn.species("y");
/// transfer(&mut crn, x, y)?;
/// let fin = run_to_completion(&crn, &[(x, 5.0)], 50.0)?;
/// assert!((fin[y.index()] - 5.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn transfer(crn: &mut Crn, from: SpeciesId, to: SpeciesId) -> Result<(), ModuleError> {
    crn.reaction_labeled(&[(from, 1)], &[(to, 1)], Rate::Fast, "transfer")?;
    Ok(())
}

/// Duplicates the quantity of `input` into every listed output:
/// `X → Y₁ + Y₂ + … + Yₙ` (fast). The input is consumed.
///
/// # Errors
///
/// Returns [`ModuleError::MissingOperand`] for an empty output list and
/// [`ModuleError::Network`] for invalid ids.
pub fn fanout(crn: &mut Crn, input: SpeciesId, outputs: &[SpeciesId]) -> Result<(), ModuleError> {
    if outputs.is_empty() {
        return Err(ModuleError::MissingOperand { module: "fanout" });
    }
    let products: Vec<(SpeciesId, u32)> = outputs.iter().map(|&o| (o, 1)).collect();
    crn.reaction_labeled(&[(input, 1)], &products, Rate::Fast, "fanout")?;
    Ok(())
}

/// Sums the listed inputs into `output`: one `Xᵢ → Y` (fast) per input.
///
/// # Errors
///
/// Returns [`ModuleError::MissingOperand`] for an empty input list and
/// [`ModuleError::Network`] for invalid ids.
pub fn add(crn: &mut Crn, inputs: &[SpeciesId], output: SpeciesId) -> Result<(), ModuleError> {
    if inputs.is_empty() {
        return Err(ModuleError::MissingOperand { module: "add" });
    }
    for &input in inputs {
        crn.reaction_labeled(&[(input, 1)], &[(output, 1)], Rate::Fast, "add")?;
    }
    Ok(())
}

/// Computes `output = max(minuend − subtrahend, 0)`:
/// `A → Y` (fast) and `B + Y → ∅` (fast).
///
/// The subtrahend eats the output as it appears; whichever side runs out
/// first decides the answer, independent of the rates.
///
/// # Errors
///
/// Returns [`ModuleError::Network`] for invalid ids.
pub fn subtract(
    crn: &mut Crn,
    minuend: SpeciesId,
    subtrahend: SpeciesId,
    output: SpeciesId,
) -> Result<(), ModuleError> {
    crn.reaction_labeled(&[(minuend, 1)], &[(output, 1)], Rate::Fast, "subtract move")?;
    crn.reaction_labeled(
        &[(subtrahend, 1), (output, 1)],
        &[],
        Rate::Fast,
        "subtract eat",
    )?;
    Ok(())
}

/// Mutual annihilation `A + B → ∅` (fast): afterwards the larger input
/// retains the difference and the smaller is empty — the comparator core.
///
/// # Errors
///
/// Returns [`ModuleError::Network`] for invalid ids.
pub fn annihilate(crn: &mut Crn, a: SpeciesId, b: SpeciesId) -> Result<(), ModuleError> {
    crn.reaction_labeled(&[(a, 1), (b, 1)], &[], Rate::Fast, "annihilate")?;
    Ok(())
}

/// Doubles a quantity: `X → 2Y` (fast).
///
/// # Errors
///
/// Returns [`ModuleError::Network`] for invalid ids.
pub fn double(crn: &mut Crn, input: SpeciesId, output: SpeciesId) -> Result<(), ModuleError> {
    crn.reaction_labeled(&[(input, 1)], &[(output, 2)], Rate::Fast, "double")?;
    Ok(())
}

/// Halves a quantity by pairing: `2X → Y` (fast).
///
/// In the continuous (ODE) limit the conversion is exact; at integer counts
/// an odd leftover molecule remains, which is the expected quantization of
/// the paper's scheme.
///
/// # Errors
///
/// Returns [`ModuleError::Network`] for invalid ids.
pub fn halve(crn: &mut Crn, input: SpeciesId, output: SpeciesId) -> Result<(), ModuleError> {
    crn.reaction_labeled(&[(input, 2)], &[(output, 1)], Rate::Fast, "halve")?;
    Ok(())
}

/// Scales a quantity by the rational `p/q`: `qX → pY` (fast).
///
/// `q` is the molecularity of the reaction, so it is limited to `1..=3`
/// (higher-order collisions are neither physical nor supported by the
/// strand-displacement chassis); larger denominators should be built by
/// cascading [`halve`] and `scale` stages.
///
/// # Errors
///
/// * [`ModuleError::UnsupportedScale`] if `p = 0`, `q = 0` or `q > 3`.
/// * [`ModuleError::Network`] for invalid ids.
pub fn scale(
    crn: &mut Crn,
    input: SpeciesId,
    output: SpeciesId,
    p: u32,
    q: u32,
) -> Result<(), ModuleError> {
    if p == 0 || q == 0 {
        return Err(ModuleError::UnsupportedScale {
            p,
            q,
            reason: "numerator and denominator must be positive",
        });
    }
    if q > 3 {
        return Err(ModuleError::UnsupportedScale {
            p,
            q,
            reason: "denominator above 3 would need a 4-body collision; cascade halve/scale stages instead",
        });
    }
    crn.reaction_labeled(&[(input, q)], &[(output, p)], Rate::Fast, "scale")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_to_completion;

    fn fresh(names: &[&str]) -> (Crn, Vec<SpeciesId>) {
        let mut crn = Crn::new();
        let ids = names.iter().map(|n| crn.species(n)).collect();
        (crn, ids)
    }

    #[test]
    fn transfer_moves_everything() {
        let (mut crn, ids) = fresh(&["x", "y"]);
        transfer(&mut crn, ids[0], ids[1]).unwrap();
        let fin = run_to_completion(&crn, &[(ids[0], 7.5)], 50.0).unwrap();
        assert!(fin[0] < 1e-6);
        assert!((fin[1] - 7.5).abs() < 1e-6);
    }

    #[test]
    fn fanout_duplicates_to_three() {
        let (mut crn, ids) = fresh(&["x", "a", "b", "c"]);
        fanout(&mut crn, ids[0], &ids[1..]).unwrap();
        let fin = run_to_completion(&crn, &[(ids[0], 4.0)], 50.0).unwrap();
        for &out in &ids[1..] {
            assert!((fin[out.index()] - 4.0).abs() < 1e-6);
        }
    }

    #[test]
    fn fanout_requires_outputs() {
        let (mut crn, ids) = fresh(&["x"]);
        assert!(matches!(
            fanout(&mut crn, ids[0], &[]),
            Err(ModuleError::MissingOperand { module: "fanout" })
        ));
    }

    #[test]
    fn add_sums_three_inputs() {
        let (mut crn, ids) = fresh(&["a", "b", "c", "y"]);
        add(&mut crn, &ids[..3], ids[3]).unwrap();
        let fin =
            run_to_completion(&crn, &[(ids[0], 1.0), (ids[1], 2.0), (ids[2], 3.5)], 50.0).unwrap();
        assert!((fin[3] - 6.5).abs() < 1e-6);
    }

    #[test]
    fn subtract_clamps_at_zero() {
        let (mut crn, ids) = fresh(&["a", "b", "y"]);
        subtract(&mut crn, ids[0], ids[1], ids[2]).unwrap();
        let fin = run_to_completion(&crn, &[(ids[0], 3.0), (ids[1], 10.0)], 300.0).unwrap();
        assert!(fin[2] < 1e-3, "3 - 10 clamps to 0, got {}", fin[2]);

        let (mut crn2, ids2) = fresh(&["a", "b", "y"]);
        subtract(&mut crn2, ids2[0], ids2[1], ids2[2]).unwrap();
        let fin2 = run_to_completion(&crn2, &[(ids2[0], 10.0), (ids2[1], 3.0)], 300.0).unwrap();
        assert!((fin2[2] - 7.0).abs() < 1e-2, "10 - 3 = 7, got {}", fin2[2]);
    }

    #[test]
    fn annihilate_leaves_difference_in_larger() {
        let (mut crn, ids) = fresh(&["a", "b"]);
        annihilate(&mut crn, ids[0], ids[1]).unwrap();
        let fin = run_to_completion(&crn, &[(ids[0], 9.0), (ids[1], 4.0)], 100.0).unwrap();
        assert!((fin[0] - 5.0).abs() < 1e-3);
        assert!(fin[1] < 1e-3);
    }

    #[test]
    fn double_and_halve_are_inverse() {
        let (mut crn, ids) = fresh(&["x", "d", "y"]);
        double(&mut crn, ids[0], ids[1]).unwrap();
        halve(&mut crn, ids[1], ids[2]).unwrap();
        let fin = run_to_completion(&crn, &[(ids[0], 6.0)], 400.0).unwrap();
        assert!((fin[2] - 6.0).abs() < 1e-2, "got {}", fin[2]);
    }

    #[test]
    fn scale_two_thirds() {
        let (mut crn, ids) = fresh(&["x", "y"]);
        scale(&mut crn, ids[0], ids[1], 2, 3).unwrap();
        let fin = run_to_completion(&crn, &[(ids[0], 9.0)], 2000.0).unwrap();
        assert!((fin[1] - 6.0).abs() < 0.05, "got {}", fin[1]);
    }

    #[test]
    fn scale_rejects_bad_rationals() {
        let (mut crn, ids) = fresh(&["x", "y"]);
        assert!(matches!(
            scale(&mut crn, ids[0], ids[1], 0, 1),
            Err(ModuleError::UnsupportedScale { .. })
        ));
        assert!(matches!(
            scale(&mut crn, ids[0], ids[1], 1, 4),
            Err(ModuleError::UnsupportedScale { .. })
        ));
    }

    #[test]
    fn error_display_and_source() {
        let e = ModuleError::UnsupportedScale {
            p: 1,
            q: 4,
            reason: "too big",
        };
        assert!(e.to_string().contains("1/4"));
        let net = ModuleError::from(CrnError::EmptyReaction);
        assert!(std::error::Error::source(&net).is_some());
        let missing = ModuleError::MissingOperand { module: "add" };
        assert!(missing.to_string().contains("add"));
    }
}
