//! # molseq-modules — rate-independent combinational modules
//!
//! The "prior work" layer of the paper: memoryless computational constructs
//! whose answers depend only on the *quantities* of the input types, never
//! on the kinetic constants. Each module is a handful of reactions appended
//! to a [`Crn`]; when the reactions have run to completion the output
//! species hold the computed quantity, for **any** positive rate constants.
//!
//! | module | computes | reactions |
//! |--------|----------|-----------|
//! | [`transfer`]  | `out = in` (moves quantity)            | `X → Y` |
//! | [`fanout`]    | `outᵢ = in` for every output            | `X → Y₁ + … + Yₙ` |
//! | [`add`]       | `out = Σ inᵢ`                           | `Xᵢ → Y` each |
//! | [`subtract`]  | `out = max(a − b, 0)`                   | `A → Y`, `B + Y → ∅` |
//! | [`annihilate`]| `a' = max(a−b, 0)`, `b' = max(b−a, 0)`  | `A + B → ∅` |
//! | [`double`]    | `out = 2·in`                            | `X → 2Y` |
//! | [`halve`]     | `out = in / 2`                          | `2X → Y` |
//! | [`scale`]     | `out = (p/q)·in`                        | `qX → pY` |
//!
//! These standalone versions consume their inputs and are *combinational*:
//! compose them acyclically and wait. The synchronous framework in
//! `molseq-sync` folds the same arithmetic into clock-phase transfers so
//! that feedback (filters, counters, iterative multiply/power/log programs)
//! becomes possible.
//!
//! ## Example
//!
//! ```
//! use molseq_crn::Crn;
//! use molseq_modules::{add, halve, run_to_completion};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // y = (a + b) / 2 — one tap of a moving-average filter.
//! let mut crn = Crn::new();
//! let a = crn.species("a");
//! let b = crn.species("b");
//! let s = crn.species("sum");
//! let y = crn.species("y");
//! add(&mut crn, &[a, b], s)?;
//! halve(&mut crn, s, y)?;
//!
//! let final_state = run_to_completion(&crn, &[(a, 10.0), (b, 4.0)], 200.0)?;
//! assert!((final_state[y.index()] - 7.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ops;

pub use ops::{add, annihilate, double, fanout, halve, scale, subtract, transfer, ModuleError};

use molseq_crn::{Crn, SpeciesId};
use molseq_kinetics::{
    simulate_until_quiescent, CompiledCrn, OdeOptions, Schedule, SimSpec, Simulation, State,
};

/// Evaluates a combinational network to quiescence: runs the kinetics from
/// the given initial amounts until every net reaction flux is below
/// `1e-9`, and returns the settled state.
///
/// Unlike [`run_to_completion`], no time horizon has to be guessed — the
/// integration stops when the answer has stabilized (with a backstop of
/// 10⁵ time units for networks that never settle, in which case the state
/// at the backstop is returned).
///
/// # Errors
///
/// Propagates any [`molseq_kinetics::SimError`] from the integrator.
///
/// # Examples
///
/// ```
/// use molseq_crn::Crn;
/// use molseq_modules::{evaluate, halve};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut crn = Crn::new();
/// let x = crn.species("x");
/// let y = crn.species("y");
/// halve(&mut crn, x, y)?;
/// let settled = evaluate(&crn, &[(x, 9.0)])?;
/// assert!((settled[y.index()] - 4.5).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn evaluate(
    crn: &Crn,
    initial: &[(SpeciesId, f64)],
) -> Result<Vec<f64>, molseq_kinetics::SimError> {
    let mut init = State::new(crn);
    for &(s, amount) in initial {
        init.set(s, amount);
    }
    let (trace, _settled) = simulate_until_quiescent(
        crn,
        &init,
        &Schedule::new(),
        &OdeOptions::default()
            .with_t_end(1e5)
            .with_record_interval(100.0),
        &SimSpec::default(),
        1e-9,
    )?;
    Ok(trace.final_state().to_vec())
}

/// Runs the deterministic kinetics of `crn` from the given initial amounts
/// until `t_end` and returns the final state — a convenience for evaluating
/// combinational modules, whose outputs are read at completion.
///
/// Rates use the default assignment (`k_fast = 1000`, `k_slow = 1`); by the
/// rate-independence property the answer would be the same for any other.
///
/// # Errors
///
/// Propagates any [`molseq_kinetics::SimError`] from the integrator.
pub fn run_to_completion(
    crn: &Crn,
    initial: &[(SpeciesId, f64)],
    t_end: f64,
) -> Result<Vec<f64>, molseq_kinetics::SimError> {
    let mut init = State::new(crn);
    for &(s, amount) in initial {
        init.set(s, amount);
    }
    let compiled = CompiledCrn::new(crn, &SimSpec::default());
    let trace = Simulation::new(crn, &compiled)
        .init(&init)
        .options(
            OdeOptions::default()
                .with_t_end(t_end)
                .with_record_interval(t_end / 50.0),
        )
        .run()?;
    Ok(trace.final_state().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use molseq_crn::RateAssignment;

    /// The rate-independence property, demonstrated end-to-end: the same
    /// composed computation under three wildly different assignments gives
    /// the same answer.
    #[test]
    fn composition_is_rate_independent() {
        let mut crn = Crn::new();
        let a = crn.species("a");
        let b = crn.species("b");
        let s = crn.species("s");
        let y = crn.species("y");
        add(&mut crn, &[a, b], s).unwrap();
        halve(&mut crn, s, y).unwrap();

        let mut answers = Vec::new();
        for ratio in [10.0, 1_000.0, 100_000.0] {
            let mut init = State::new(&crn);
            init.set(a, 9.0).set(b, 3.0);
            let compiled = CompiledCrn::new(&crn, &SimSpec::new(RateAssignment::from_ratio(ratio)));
            let trace = Simulation::new(&crn, &compiled)
                .init(&init)
                .options(
                    OdeOptions::default()
                        .with_t_end(400.0)
                        .with_record_interval(10.0),
                )
                .run()
                .unwrap();
            answers.push(trace.final_state()[y.index()]);
        }
        for &ans in &answers {
            assert!((ans - 6.0).abs() < 1e-2, "{answers:?}");
        }
    }
}
