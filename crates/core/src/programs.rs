//! Iterative sequential programs — the paper's "for/while loop" constructs.
//!
//! The combinational layer can add, scale and clamp-subtract, but
//! multiplication, exponentiation and logarithms need *iteration*: a loop
//! counter, a data path that executes one step per clock cycle, and a
//! data-dependent gate that shuts the loop down when the counter runs out.
//! This module builds those loops on [`SyncCircuit`].
//!
//! The key gadget is the **presence gate** `min(a, M·b)`: for a loop
//! counter `b` held in multiples of the amplitude, `min(a, M·b)` equals
//! `a` while the counter is positive and `0` once it empties (with `M`
//! large enough that one counter unit already dominates `a`). It is built
//! from two clamped subtractions — `min(a, c) = a − max(a − c, 0)` — which
//! the two-stage discipline of the compiler accommodates exactly.
//!
//! Because a second-stage subtraction may only feed registers, each loop
//! step lands in a pipeline register; the programs below account for the
//! extra cycle of latency in their documented schedules.

use crate::{
    drive_cycles, ClockSpec, CompiledSystem, CycleResources, Node, RunConfig, SyncCircuit,
    SyncError, SyncRun,
};

/// Builds the presence-gated value `min(value, M·counter)` inside a
/// circuit: equals `value` while `counter > 0`, and `0` when the counter
/// is empty. `boost` is `M`.
fn gated_by_counter(c: &mut SyncCircuit, value: Node, counter: Node, boost: u32) -> Node {
    let big = c.scale(counter, boost, 1);
    let overshoot = c.sub(value, big); // green: max(value − M·counter, 0)
    c.sub(value, overshoot) // blue: value − overshoot = min(value, M·counter)
}

/// An iterative multiplier: computes `a × n` by adding `a` to an
/// accumulator once per loop iteration, `n` times.
///
/// * `a` is an arbitrary quantity (the multiplicand), loaded once.
/// * `n` is a small integer (the multiplier), loaded as `n·unit` into the
///   loop counter.
///
/// The loop runs one iteration per clock cycle (the gated step lands in
/// a pipeline register and is accumulated the cycle after), so the
/// product is ready after `n + 2` cycles and stays there — the gate reads
/// the counter, so once it empties the accumulator freezes.
///
/// # Examples
///
/// ```no_run
/// use molseq_sync::{ClockSpec, IterativeMultiplier, RunConfig};
///
/// # fn main() -> Result<(), molseq_sync::SyncError> {
/// let mult = IterativeMultiplier::build(ClockSpec::default(), 25.0, 3, 60.0)?;
/// let product = mult.run(&RunConfig::default())?;
/// assert!((product - 75.0).abs() < 2.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IterativeMultiplier {
    system: CompiledSystem,
    a: f64,
    n: u32,
    cycles_needed: usize,
}

impl IterativeMultiplier {
    /// Builds the multiplier for `a × n`, with the loop counter held in
    /// units of `unit` (use the circuit amplitude, e.g. 60).
    ///
    /// # Errors
    ///
    /// [`SyncError::InvalidAmount`] for non-finite or non-positive `a` or
    /// `unit`, or `n = 0`; compilation errors are propagated.
    pub fn build(clock: ClockSpec, a: f64, n: u32, unit: f64) -> Result<Self, SyncError> {
        if !(a.is_finite() && a > 0.0) {
            return Err(SyncError::InvalidAmount { value: a });
        }
        if !(unit.is_finite() && unit > 0.0) {
            return Err(SyncError::InvalidAmount { value: unit });
        }
        if n == 0 {
            return Err(SyncError::InvalidAmount { value: 0.0 });
        }
        // one counter unit must dominate `a` after boosting
        let boost = (a / unit).ceil().max(1.0) as u32 + 1;

        let mut c = SyncCircuit::new(clock);
        // the multiplicand register regenerates `a` every cycle
        let a_reg = c.constant("a", a);
        // the loop counter, decremented by one unit per iteration
        let counter = c.feedback_delay_with_init("counter", f64::from(n) * unit);
        let unit_const = c.constant("unit", unit);

        // one loop step: the gated addend (0 once the counter is empty)
        let addend = gated_by_counter(&mut c, a_reg, counter, boost);
        let addend_reg = c.delay("addend", addend);

        // the decrement likewise stops at zero: counter' = max(counter − unit, 0)
        let next_counter = c.sub(counter, unit_const);
        c.rebind_register("counter", next_counter)?;

        // accumulate: acc' = acc + addend(previous cycle)
        let acc = c.feedback_delay("acc");
        let next_acc = c.add(&[acc, addend_reg]);
        c.rebind_register("acc", next_acc)?;
        c.output("product", acc);

        let system = c.compile()?;
        Ok(IterativeMultiplier {
            system,
            a,
            n,
            // each decrement lands one cycle after its gated read; add
            // slack for the pipeline registers to flush
            cycles_needed: 2 * n as usize + 4,
        })
    }

    /// The compiled system.
    #[must_use]
    pub fn system(&self) -> &CompiledSystem {
        &self.system
    }

    /// The exact product `a × n`.
    #[must_use]
    pub fn expected(&self) -> f64 {
        self.a * f64::from(self.n)
    }

    /// Number of clock cycles until the product has settled.
    #[must_use]
    pub fn cycles_needed(&self) -> usize {
        self.cycles_needed
    }

    /// Runs the loop to completion and returns the accumulated product.
    ///
    /// # Errors
    ///
    /// Propagates harness errors.
    pub fn run(&self, config: &RunConfig) -> Result<f64, SyncError> {
        let run = drive_cycles(
            &self.system,
            &[],
            self.cycles_needed,
            config,
            CycleResources::default(),
        )?;
        let acc = run.register_series("acc")?;
        Ok(*acc.last().expect("at least one cycle"))
    }

    /// Runs the loop and returns the full per-cycle trace of the
    /// accumulator (for inspection and the examples).
    ///
    /// # Errors
    ///
    /// Propagates harness errors.
    pub fn run_traced(&self, config: &RunConfig) -> Result<SyncRun, SyncError> {
        drive_cycles(
            &self.system,
            &[],
            self.cycles_needed,
            config,
            CycleResources::default(),
        )
    }
}

/// An iterative base-2 logarithm: halves a quantity once per clock cycle
/// and counts the cycles in which at least one unit remained. For an
/// input of `n·unit` with `n` a power of two, the count converges to
/// exactly `log2(n) + 1` units — the number of halvings until the value
/// drops below one unit.
///
/// The per-cycle tick is *thresholded* (`min(unit, max(2·value − unit, 0))`
/// through a pipeline register) rather than a plain `min(unit, value)`: a
/// molecular halving is a pairing reaction `2X → Y` whose tail decays
/// algebraically, so an unthresholded tick would keep accumulating
/// residual counts long after the value is logically zero.
///
/// One halving per cycle; the count settles after `log2(n) + 8` cycles.
///
/// # Examples
///
/// ```no_run
/// use molseq_sync::{ClockSpec, IterativeLog2, RunConfig};
///
/// # fn main() -> Result<(), molseq_sync::SyncError> {
/// let log = IterativeLog2::build(ClockSpec::default(), 8.0, 30.0)?;
/// let iterations = log.run(&RunConfig::default())?;
/// assert!((iterations - 4.0).abs() < 0.3, "log2(8) + 1 = 4");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IterativeLog2 {
    system: CompiledSystem,
    n: f64,
    unit: f64,
    cycles_needed: usize,
}

impl IterativeLog2 {
    /// Builds the log loop for an input of `n` units of `unit`.
    ///
    /// # Errors
    ///
    /// [`SyncError::InvalidAmount`] for bad parameters; compilation errors
    /// are propagated.
    pub fn build(clock: ClockSpec, n: f64, unit: f64) -> Result<Self, SyncError> {
        if !(n.is_finite() && n >= 1.0) {
            return Err(SyncError::InvalidAmount { value: n });
        }
        if !(unit.is_finite() && unit > 0.0) {
            return Err(SyncError::InvalidAmount { value: unit });
        }
        let mut c = SyncCircuit::new(clock);
        // the value being halved
        let value = c.feedback_delay_with_init("value", n * unit);
        let halved = c.halve(value);
        c.rebind_register("value", halved)?;

        // thresholded presence: max(2·value − unit, 0) is ≥ unit exactly
        // while value ≥ unit and collapses to ~0 below unit/2, cutting the
        // pairing tail off cleanly
        let unit_const = c.constant("unit", unit);
        let doubled = c.double(value);
        let thresholded = c.sub(doubled, unit_const);
        let th_reg = c.delay("th", thresholded);
        let tick = gated_by_counter(&mut c, unit_const, th_reg, 1);
        let tick_reg = c.delay("tick", tick);

        let count = c.feedback_delay("count");
        let next_count = c.add(&[count, tick_reg]);
        c.rebind_register("count", next_count)?;
        c.output("iterations", count);

        let system = c.compile()?;
        let cycles_needed = (n.log2().ceil().max(0.0) as usize) + 8;
        Ok(IterativeLog2 {
            system,
            n,
            unit,
            cycles_needed,
        })
    }

    /// The compiled system.
    #[must_use]
    pub fn system(&self) -> &CompiledSystem {
        &self.system
    }

    /// Number of clock cycles until the count has settled.
    #[must_use]
    pub fn cycles_needed(&self) -> usize {
        self.cycles_needed
    }

    /// Runs the loop and returns the iteration count in units
    /// (`log2(n) + 1` for power-of-two `n`).
    ///
    /// # Errors
    ///
    /// Propagates harness errors.
    pub fn run(&self, config: &RunConfig) -> Result<f64, SyncError> {
        let run = drive_cycles(
            &self.system,
            &[],
            self.cycles_needed,
            config,
            CycleResources::default(),
        )?;
        let count = run.register_series("count")?;
        Ok(*count.last().expect("at least one cycle") / self.unit)
    }

    /// The exact input quantity (`n·unit`).
    #[must_use]
    pub fn input(&self) -> f64 {
        self.n * self.unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_rejects_bad_parameters() {
        assert!(IterativeMultiplier::build(ClockSpec::default(), 0.0, 3, 60.0).is_err());
        assert!(IterativeMultiplier::build(ClockSpec::default(), 10.0, 0, 60.0).is_err());
        assert!(IterativeMultiplier::build(ClockSpec::default(), 10.0, 3, f64::NAN).is_err());
    }

    #[test]
    fn log_rejects_bad_parameters() {
        assert!(IterativeLog2::build(ClockSpec::default(), 0.5, 60.0).is_err());
        assert!(IterativeLog2::build(ClockSpec::default(), 8.0, 0.0).is_err());
    }

    #[test]
    fn multiplier_computes_a_times_n() {
        let mult = IterativeMultiplier::build(ClockSpec::default(), 25.0, 3, 60.0).expect("builds");
        let product = mult.run(&RunConfig::default()).expect("runs");
        assert!((product - 75.0).abs() < 2.5, "25 × 3 = 75, got {product}");
    }

    #[test]
    fn log2_counts_halvings() {
        let log = IterativeLog2::build(ClockSpec::default(), 8.0, 30.0).expect("builds");
        let iterations = log.run(&RunConfig::default()).expect("runs");
        assert!(
            (iterations - 4.0).abs() < 0.3,
            "log2(8) + 1 = 4, got {iterations}"
        );
    }
}
