//! The reaction-level generator: colored species, absence indicators,
//! gated transfers and autocatalytic sharpeners.
//!
//! This module emits the reactions of the companion abstract's equations
//! (1)–(6). For every color `c` with indicator `ind(c)`:
//!
//! ```text
//! ∅ → ind(c)                    (slow)   indicator source
//! ind(c) + S → S                (fast)   for every species S of color c
//! ```
//!
//! and for every declared transfer of a species `S` (color `c`) into
//! products `P` (normally of color `c.next()`):
//!
//! ```text
//! ind(c.prev()) + S → P         (slow)   gated seed
//! 2T → I_T                      (slow)   ┐ sharpener for the primary
//! I_T → 2T                      (fast)   ┘ destination T of the transfer
//! I_T + S → 2T + P              (fast)   positive feedback
//! ```
//!
//! Because an indicator only exists while its whole color category is
//! empty, the seed of a phase cannot fire until the previous phase has
//! drained *every* species of that color — the indicators synchronize all
//! delay elements globally, which is what makes the scheme a clocked
//! (synchronous) design.

use crate::{Color, SyncError};
use molseq_crn::{Crn, Rate, SpeciesId};
use std::collections::HashMap;

/// Configuration of the generated reaction scheme.
///
/// The defaults reproduce the paper's setup. The two switches exist for the
/// ablation experiments:
///
/// * `sharpeners: false` drops the autocatalytic feedback, leaving only the
///   indicator-gated seeds — transfers still complete but take time
///   proportional to the transferred quantity and have soft edges.
/// * `full_coupling: true` emits the cross-coupled feedback of the paper's
///   equations (`I_{G,j} + R_i → 2G_j + G_i` for **all** pairs `i, j` in a
///   phase) instead of only the per-destination self terms. Cross coupling
///   costs O(n²) reactions and slightly tightens phase alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeConfig {
    /// Emit autocatalytic sharpeners (default `true`).
    pub sharpeners: bool,
    /// Emit all-pairs cross-coupled feedback (default `false`).
    pub full_coupling: bool,
}

impl Default for SchemeConfig {
    fn default() -> Self {
        SchemeConfig {
            sharpeners: true,
            full_coupling: false,
        }
    }
}

/// Parameters of the clock ring embedded in every compiled circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockSpec {
    /// Quantity of the circulating clock token.
    pub token: f64,
    /// Scheme configuration shared by the whole circuit.
    pub config: SchemeConfig,
}

impl Default for ClockSpec {
    /// Token quantity 100 with the default scheme.
    fn default() -> Self {
        ClockSpec {
            token: 100.0,
            config: SchemeConfig::default(),
        }
    }
}

#[derive(Debug, Clone)]
struct Transfer {
    src: SpeciesId,
    src_color: Color,
    products: Vec<(SpeciesId, u32)>,
    /// The species whose accumulation drives the positive feedback.
    /// Defaults to the primary destination; must be overridden when the
    /// destination is a staging species that fast reactions consume
    /// immediately (it would never accumulate, the feedback would never
    /// ignite, and the transfer would crawl at the indicator-supply rate).
    proxy: Option<SpeciesId>,
    label: String,
}

/// The low-level builder. Declare colored species, transfers and same-stage
/// fast reactions; [`SchemeBuilder::finish`] emits the indicator and
/// sharpener machinery and returns the complete [`Crn`].
///
/// Most users want [`SyncCircuit`](crate::SyncCircuit); the builder is the
/// escape hatch for constructs the register-transfer layer cannot express.
///
/// # Examples
///
/// A one-element ring (this is exactly how [`Clock`](crate::Clock) is
/// built):
///
/// ```
/// use molseq_sync::{Color, SchemeBuilder, SchemeConfig};
///
/// # fn main() -> Result<(), molseq_sync::SyncError> {
/// let mut b = SchemeBuilder::new(SchemeConfig::default());
/// let r = b.signal("clk.R", Color::Red)?;
/// let g = b.signal("clk.G", Color::Green)?;
/// let blue = b.signal("clk.B", Color::Blue)?;
/// b.transfer(r, &[(g, 1)], "clk R->G")?;
/// b.transfer(g, &[(blue, 1)], "clk G->B")?;
/// b.transfer(blue, &[(r, 1)], "clk B->R")?;
/// b.set_initial(r, 100.0)?;
/// let (crn, initial) = b.finish()?;
/// assert!(crn.reactions().len() >= 9);
/// assert_eq!(initial, vec![(r, 100.0)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SchemeBuilder {
    crn: Crn,
    config: SchemeConfig,
    colors: HashMap<SpeciesId, Color>,
    colored: [Vec<SpeciesId>; 3],
    indicators: [SpeciesId; 3],
    phase_drivers: [Option<SpeciesId>; 3],
    transfers: Vec<Transfer>,
    initial: Vec<(SpeciesId, f64)>,
}

impl SchemeBuilder {
    /// Creates a builder; the three indicators `r`, `g`, `b` are registered
    /// immediately.
    #[must_use]
    pub fn new(config: SchemeConfig) -> Self {
        let mut crn = Crn::new();
        let indicators = [
            crn.species(Color::Red.indicator_name()),
            crn.species(Color::Green.indicator_name()),
            crn.species(Color::Blue.indicator_name()),
        ];
        SchemeBuilder {
            crn,
            config,
            colors: HashMap::new(),
            colored: [Vec::new(), Vec::new(), Vec::new()],
            indicators,
            phase_drivers: [None; 3],
            transfers: Vec::new(),
            initial: Vec::new(),
        }
    }

    /// The scheme configuration.
    #[must_use]
    pub fn config(&self) -> SchemeConfig {
        self.config
    }

    /// Registers (or retrieves) a species carrying a color category.
    ///
    /// # Errors
    ///
    /// [`SyncError::ColorConflict`] if the name already exists with a
    /// different color.
    pub fn signal(&mut self, name: &str, color: Color) -> Result<SpeciesId, SyncError> {
        let id = self.crn.species(name);
        match self.colors.get(&id) {
            Some(&existing) if existing != color => {
                return Err(SyncError::ColorConflict { name: name.into() })
            }
            Some(_) => {}
            None => {
                self.colors.insert(id, color);
                self.colored[color.index()].push(id);
            }
        }
        Ok(id)
    }

    /// Registers (or retrieves) a species outside the color system — used
    /// for waste sinks and output accumulators, which must not block the
    /// indicators.
    pub fn uncolored(&mut self, name: &str) -> SpeciesId {
        self.crn.species(name)
    }

    /// The color of a species, if it has one.
    #[must_use]
    pub fn color_of(&self, id: SpeciesId) -> Option<Color> {
        self.colors.get(&id).copied()
    }

    /// The absence indicator species of a color.
    #[must_use]
    pub fn indicator(&self, color: Color) -> SpeciesId {
        self.indicators[color.index()]
    }

    /// Declares `species` (colored `color`) as the **phase driver** for
    /// its color: every transfer *into* that color gains an extra
    /// positive-feedback partner keyed on the driver's sharpener dimer.
    ///
    /// This is the paper's cross-coupled feedback
    /// (`I_{G,j} + R_i → 2G_j + G_i`), restricted to one designated
    /// partner per phase. With a clock ring as the driver set, the clock's
    /// large token ignites every phase crisply and then drives *all*
    /// same-phase datapath transfers at full speed — including transfers
    /// of quantities far too small to ignite feedback of their own
    /// (small-signal transfers otherwise crawl at the indicator-
    /// equilibrium floor).
    ///
    /// # Panics
    ///
    /// Panics if `species` is not colored `color` (a driver must belong to
    /// the phase it drives).
    pub fn set_phase_driver(&mut self, color: Color, species: SpeciesId) {
        assert_eq!(
            self.color_of(species),
            Some(color),
            "a phase driver must be colored with its own phase"
        );
        self.phase_drivers[color.index()] = Some(species);
    }

    /// Declares a gated, sharpened transfer of the whole quantity of `src`
    /// into `products` (each product receives `multiplicity ×` the source
    /// quantity).
    ///
    /// The transfer fires during `color(src)`'s phase, gated on the absence
    /// indicator of `color(src).prev()`. Products are typically of color
    /// `color(src).next()` or uncolored (sinks); this is not enforced, but
    /// a product of the *same* color as the source would never drain.
    ///
    /// # Errors
    ///
    /// [`SyncError::UncoloredSource`] if `src` has no color.
    pub fn transfer(
        &mut self,
        src: SpeciesId,
        products: &[(SpeciesId, u32)],
        label: &str,
    ) -> Result<(), SyncError> {
        self.push_transfer(src, products, None, label)
    }

    /// Like [`transfer`](Self::transfer), but the positive feedback senses
    /// the accumulation of `proxy` instead of the primary destination.
    ///
    /// Use this whenever the destination is a *staging* species that fast
    /// reactions consume immediately (scaling stages, fan-out values): the
    /// staging species never accumulates, so feedback keyed on it would
    /// never ignite and the transfer would be limited by the zero-order
    /// indicator supply. The proxy should be the first species downstream
    /// of the staging chain that holds quantity for the rest of the phase.
    ///
    /// # Errors
    ///
    /// [`SyncError::UncoloredSource`] if `src` has no color.
    pub fn transfer_sharpened_by(
        &mut self,
        src: SpeciesId,
        products: &[(SpeciesId, u32)],
        proxy: SpeciesId,
        label: &str,
    ) -> Result<(), SyncError> {
        self.push_transfer(src, products, Some(proxy), label)
    }

    fn push_transfer(
        &mut self,
        src: SpeciesId,
        products: &[(SpeciesId, u32)],
        proxy: Option<SpeciesId>,
        label: &str,
    ) -> Result<(), SyncError> {
        let src_color = self
            .color_of(src)
            .ok_or_else(|| SyncError::UncoloredSource {
                name: self.crn.species_name(src).to_owned(),
            })?;
        self.transfers.push(Transfer {
            src,
            src_color,
            products: products.to_vec(),
            proxy,
            label: label.to_owned(),
        });
        Ok(())
    }

    /// Adds a *catalytic transfer*: `ind + src → ind + products` (fast),
    /// with the indicator of `color(src).prev()` as a catalyst.
    ///
    /// Compared with the seed + dimer-feedback form
    /// ([`transfer`](Self::transfer)), the catalytic form needs no
    /// accumulating destination to ignite — it runs at full speed the
    /// moment its gate indicator exists. The price is a small leak: while
    /// the gating category is still occupied, the indicator sits at its
    /// suppressed equilibrium `k_slow/(k_fast·Σ)` and the transfer
    /// trickles at `k_slow·[src]/Σ`. Use it where that leak is harmless —
    /// register read-out rotations (the leaked value is the one the next
    /// phase would read anyway) and stage crossings (leaked quantity joins
    /// the same downstream flow) — and keep the dimer form for commits,
    /// where leakage would bleed one cycle into the previous one.
    ///
    /// # Errors
    ///
    /// [`SyncError::UncoloredSource`] if `src` has no color.
    pub fn transfer_catalytic(
        &mut self,
        src: SpeciesId,
        products: &[(SpeciesId, u32)],
        label: &str,
    ) -> Result<(), SyncError> {
        let src_color = self
            .color_of(src)
            .ok_or_else(|| SyncError::UncoloredSource {
                name: self.crn.species_name(src).to_owned(),
            })?;
        let gate = self.indicators[src_color.prev().index()];
        let mut all_products: Vec<(SpeciesId, u32)> = vec![(gate, 1)];
        all_products.extend_from_slice(products);
        self.crn.reaction_labeled(
            &[(gate, 1), (src, 1)],
            &all_products,
            Rate::Fast,
            format!("catalytic {label}"),
        )?;
        Ok(())
    }

    /// Adds a *gated fast drain*: `ind + src → dst + ind` (fast), with the
    /// indicator of `color(src).prev()` as a catalyst.
    ///
    /// This is the right primitive for **terminal** hops — output
    /// accumulators, waste sinks, residue disposal — where the quantity's
    /// destination is outside the color system. It is phase-disciplined
    /// (the catalyst only exists once the previous category has drained),
    /// completes fast (no zero-order indicator budget is consumed), and
    /// cannot leak across cycles the way an accumulator-keyed sharpener
    /// would: the catalyst vanishes whenever the gating category refills.
    ///
    /// # Errors
    ///
    /// [`SyncError::UncoloredSource`] if `src` has no color.
    pub fn gated_drain(
        &mut self,
        src: SpeciesId,
        dst: SpeciesId,
        label: &str,
    ) -> Result<(), SyncError> {
        let src_color = self
            .color_of(src)
            .ok_or_else(|| SyncError::UncoloredSource {
                name: self.crn.species_name(src).to_owned(),
            })?;
        let gate = self.indicators[src_color.prev().index()];
        self.crn.reaction_labeled(
            &[(gate, 1), (src, 1)],
            &[(gate, 1), (dst, 1)],
            Rate::Fast,
            format!("gated drain {label}"),
        )?;
        Ok(())
    }

    /// Adds an ungated fast reaction — the within-stage combinational
    /// operations (summing transfers, pairing/halving, clamped subtraction,
    /// annihilation).
    ///
    /// # Errors
    ///
    /// Propagates network errors for invalid terms.
    pub fn fast(
        &mut self,
        reactants: &[(SpeciesId, u32)],
        products: &[(SpeciesId, u32)],
        label: &str,
    ) -> Result<(), SyncError> {
        self.crn
            .reaction_labeled(reactants, products, Rate::Fast, label)?;
        Ok(())
    }

    /// Records an initial quantity for a species (emitted with
    /// [`finish`](Self::finish)).
    ///
    /// # Errors
    ///
    /// [`SyncError::InvalidAmount`] if the amount is negative or not finite.
    pub fn set_initial(&mut self, species: SpeciesId, amount: f64) -> Result<(), SyncError> {
        if !(amount.is_finite() && amount >= 0.0) {
            return Err(SyncError::InvalidAmount { value: amount });
        }
        self.initial.push((species, amount));
        Ok(())
    }

    /// Direct access to the underlying network (for inspection; reactions
    /// added here bypass the scheme bookkeeping).
    #[must_use]
    pub fn crn(&self) -> &Crn {
        &self.crn
    }

    /// Emits the indicator machinery and all declared transfers, returning
    /// the finished network and the recorded initial quantities.
    ///
    /// # Errors
    ///
    /// Propagates network-construction errors (which indicate a bug in a
    /// construct rather than user error).
    pub fn finish(mut self) -> Result<(Crn, Vec<(SpeciesId, f64)>), SyncError> {
        // (1) indicator sources and absorption
        for color in Color::ALL {
            let ind = self.indicators[color.index()];
            self.crn.reaction_labeled(
                &[],
                &[(ind, 1)],
                Rate::Slow,
                format!("indicator source {}", color.indicator_name()),
            )?;
            for &s in &self.colored[color.index()] {
                self.crn.reaction_labeled(
                    &[(ind, 1), (s, 1)],
                    &[(s, 1)],
                    Rate::Fast,
                    format!(
                        "absorb {} by {}",
                        color.indicator_name(),
                        self.crn.species_name(s).to_owned()
                    ),
                )?;
            }
        }

        // (4)–(6) seeds, plus (2)–(3) sharpeners
        let mut sharpeners: HashMap<SpeciesId, SpeciesId> = HashMap::new();
        let transfers = std::mem::take(&mut self.transfers);

        // First pass: create sharpener intermediates for every primary
        // destination (needed before cross-coupling can reference them).
        // The dimer intermediate holds `(k_slow/k_fast)·T²` of quantity in
        // fast equilibrium — about 8% at amplitude 100 under the default
        // rates. This is not a loss: `T + 2·I[T]` is exact at all times
        // (see `stored_value_terms`), and the share re-releases as `T`
        // drains. Without the sharpener, a transfer's throughput would be
        // capped by the zero-order indicator supply (one quantity unit per
        // `1/k_slow`), making phase times linear in the transferred
        // amount.
        let proxy_of = |t: &Transfer| -> Option<SpeciesId> {
            t.proxy.or_else(|| t.products.first().map(|&(d, _)| d))
        };
        if self.config.sharpeners {
            for t in &transfers {
                let Some(proxy) = proxy_of(t) else { continue };
                // Only *colored* proxies may carry feedback: a colored
                // species empties every cycle, so no stale intermediate
                // survives into the next one. An accumulator proxy would
                // keep its dimer alive across cycles and the (ungated)
                // feedback reaction would let later waves bypass the phase
                // gates. Terminal hops should use `gated_drain` instead.
                if sharpeners.contains_key(&proxy) || self.color_of(proxy).is_none() {
                    continue;
                }
                let proxy_name = self.crn.species_name(proxy).to_owned();
                let i_proxy = self.crn.species(format!("I[{proxy_name}]"));
                self.crn.reaction_labeled(
                    &[(proxy, 2)],
                    &[(i_proxy, 1)],
                    Rate::Slow,
                    format!("sharpener dimerize {proxy_name}"),
                )?;
                self.crn.reaction_labeled(
                    &[(i_proxy, 1)],
                    &[(proxy, 2)],
                    Rate::Fast,
                    format!("sharpener release {proxy_name}"),
                )?;
                sharpeners.insert(proxy, i_proxy);
            }
        }

        for t in &transfers {
            let gate = self.indicators[t.src_color.prev().index()];
            self.crn.reaction_labeled(
                &[(gate, 1), (t.src, 1)],
                &t.products,
                Rate::Slow,
                format!("seed {}", t.label),
            )?;
            if !self.config.sharpeners {
                continue;
            }
            // Feedback partners: own proxy, the phase driver of the
            // destination color, and (full coupling) every sharpened
            // proxy whose transfer fires in the same phase.
            let mut partners: Vec<SpeciesId> = if self.config.full_coupling {
                transfers
                    .iter()
                    .filter(|u| u.src_color == t.src_color)
                    .filter_map(proxy_of)
                    .filter(|d| sharpeners.contains_key(d))
                    .collect()
            } else {
                proxy_of(t)
                    .into_iter()
                    .filter(|d| sharpeners.contains_key(d))
                    .collect()
            };
            if let Some(driver) = self.phase_drivers[t.src_color.next().index()] {
                if sharpeners.contains_key(&driver) {
                    partners.push(driver);
                }
            }
            let mut seen = Vec::new();
            for proxy in partners {
                if seen.contains(&proxy) {
                    continue;
                }
                seen.push(proxy);
                let i_proxy = sharpeners[&proxy];
                // I_proxy + src → products + 2·proxy: the feedback senses
                // the proxy's accumulation and regenerates it, conserving
                // quantity exactly.
                let mut products = t.products.clone();
                products.push((proxy, 2));
                self.crn.reaction_labeled(
                    &[(i_proxy, 1), (t.src, 1)],
                    &products,
                    Rate::Fast,
                    format!(
                        "feedback {} via {}",
                        t.label,
                        self.crn.species_name(proxy).to_owned()
                    ),
                )?;
            }
        }

        // Deduplicate initial quantities (last set wins).
        let mut merged: Vec<(SpeciesId, f64)> = Vec::new();
        for (s, amount) in std::mem::take(&mut self.initial) {
            if let Some(entry) = merged.iter_mut().find(|(id, _)| *id == s) {
                entry.1 = amount;
            } else {
                merged.push((s, amount));
            }
        }
        Ok((self.crn, merged))
    }

    /// Lists colored species that have neither an outgoing transfer nor any
    /// consuming fast reaction — such species would trap quantity in their
    /// category and stall the rotation forever. Useful in construct tests.
    #[must_use]
    pub fn stall_risks(&self) -> Vec<String> {
        let mut consumed: Vec<bool> = vec![false; self.crn.species_count()];
        for t in &self.transfers {
            consumed[t.src.index()] = true;
        }
        for r in self.crn.reactions() {
            for term in r.reactants() {
                if r.net_change(term.species) < 0 {
                    consumed[term.species.index()] = true;
                }
            }
        }
        self.colors
            .keys()
            .filter(|id| !consumed[id.index()])
            .map(|id| self.crn.species_name(*id).to_owned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> SchemeBuilder {
        let mut b = SchemeBuilder::new(SchemeConfig::default());
        let r = b.signal("R", Color::Red).unwrap();
        let g = b.signal("G", Color::Green).unwrap();
        let blue = b.signal("B", Color::Blue).unwrap();
        b.transfer(r, &[(g, 1)], "R->G").unwrap();
        b.transfer(g, &[(blue, 1)], "G->B").unwrap();
        b.transfer(blue, &[(r, 1)], "B->R").unwrap();
        b
    }

    #[test]
    fn ring_emits_expected_reaction_counts() {
        let b = ring();
        let (crn, _) = b.finish().unwrap();
        // 3 indicator sources + 3 absorptions + 3 seeds
        // + 3 sharpener pairs (6) + 3 feedback = 18
        assert_eq!(crn.reactions().len(), 18);
        assert!(crn.find_species("I[G]").is_some());
    }

    #[test]
    fn no_sharpeners_halves_the_machinery() {
        let mut b = SchemeBuilder::new(SchemeConfig {
            sharpeners: false,
            full_coupling: false,
        });
        let r = b.signal("R", Color::Red).unwrap();
        let g = b.signal("G", Color::Green).unwrap();
        b.transfer(r, &[(g, 1)], "R->G").unwrap();
        let (crn, _) = b.finish().unwrap();
        // 3 sources + 2 absorptions + 1 seed
        assert_eq!(crn.reactions().len(), 6);
        assert!(crn.find_species("I[G]").is_none());
    }

    #[test]
    fn full_coupling_adds_cross_terms() {
        let build = |full| {
            let mut b = SchemeBuilder::new(SchemeConfig {
                sharpeners: true,
                full_coupling: full,
            });
            // two independent red→green transfers in the same phase
            let r1 = b.signal("R1", Color::Red).unwrap();
            let r2 = b.signal("R2", Color::Red).unwrap();
            let g1 = b.signal("G1", Color::Green).unwrap();
            let g2 = b.signal("G2", Color::Green).unwrap();
            b.transfer(r1, &[(g1, 1)], "1").unwrap();
            b.transfer(r2, &[(g2, 1)], "2").unwrap();
            // drain greens so stall check stays clean
            let w = b.uncolored("waste");
            b.transfer(g1, &[(w, 1)], "d1").unwrap();
            b.transfer(g2, &[(w, 1)], "d2").unwrap();
            let (crn, _) = b.finish().unwrap();
            crn.reactions().len()
        };
        let self_only = build(false);
        let full = build(true);
        assert!(full > self_only, "{full} vs {self_only}");
    }

    #[test]
    fn color_conflict_is_rejected() {
        let mut b = SchemeBuilder::new(SchemeConfig::default());
        b.signal("X", Color::Red).unwrap();
        assert!(matches!(
            b.signal("X", Color::Blue),
            Err(SyncError::ColorConflict { .. })
        ));
        // same color is fine and returns the same id
        let again = b.signal("X", Color::Red).unwrap();
        assert_eq!(b.color_of(again), Some(Color::Red));
    }

    #[test]
    fn transfer_requires_colored_source() {
        let mut b = SchemeBuilder::new(SchemeConfig::default());
        let w = b.uncolored("w");
        let x = b.signal("X", Color::Red).unwrap();
        assert!(matches!(
            b.transfer(w, &[(x, 1)], "bad"),
            Err(SyncError::UncoloredSource { .. })
        ));
    }

    #[test]
    fn stall_risks_finds_trapped_species() {
        let mut b = SchemeBuilder::new(SchemeConfig::default());
        let r = b.signal("R", Color::Red).unwrap();
        let g = b.signal("G", Color::Green).unwrap();
        b.transfer(r, &[(g, 1)], "R->G").unwrap();
        // G has no outgoing transfer and no fast consumer
        let risks = b.stall_risks();
        assert_eq!(risks, vec!["G".to_owned()]);
        // a fast consumer clears the risk
        let w = b.uncolored("w");
        b.fast(&[(g, 2)], &[(w, 1)], "pair away").unwrap();
        assert!(b.stall_risks().is_empty());
    }

    #[test]
    fn initial_values_deduplicate() {
        let mut b = ring();
        let r = b.signal("R", Color::Red).unwrap();
        b.set_initial(r, 50.0).unwrap();
        b.set_initial(r, 80.0).unwrap();
        let (_, init) = b.finish().unwrap();
        assert_eq!(init, vec![(r, 80.0)]);
    }

    #[test]
    fn invalid_initial_amount_is_rejected() {
        let mut b = ring();
        let r = b.signal("R", Color::Red).unwrap();
        assert!(matches!(
            b.set_initial(r, f64::NAN),
            Err(SyncError::InvalidAmount { .. })
        ));
    }

    #[test]
    fn gated_drain_is_catalytic_and_fast() {
        let mut b = SchemeBuilder::new(SchemeConfig::default());
        let blue = b.signal("B", Color::Blue).unwrap();
        let y = b.uncolored("Y");
        b.gated_drain(blue, y, "out").unwrap();
        let (crn, _) = b.finish().unwrap();
        let drain = crn
            .reactions()
            .iter()
            .position(|r| r.label() == Some("gated drain out"))
            .expect("drain exists");
        let r = &crn.reactions()[drain];
        assert_eq!(r.rate(), molseq_crn::Rate::Fast);
        // the gate indicator (g, for a blue source) is catalytic
        let g = crn.find_species("g").unwrap();
        assert!(r.is_catalyst(g));
        assert_eq!(r.net_change(blue), -1);
        assert_eq!(r.net_change(y), 1);
    }

    #[test]
    fn catalytic_transfer_preserves_gate() {
        let mut b = SchemeBuilder::new(SchemeConfig::default());
        let red = b.signal("R", Color::Red).unwrap();
        let green = b.signal("G", Color::Green).unwrap();
        let w = b.uncolored("w");
        b.transfer_catalytic(red, &[(green, 1)], "R->G").unwrap();
        b.gated_drain(green, w, "g out").unwrap();
        let (crn, _) = b.finish().unwrap();
        let t = crn
            .reactions()
            .iter()
            .find(|r| r.label() == Some("catalytic R->G"))
            .expect("transfer exists");
        let gate = crn.find_species("b").unwrap();
        assert!(t.is_catalyst(gate), "gate must be preserved");
        assert_eq!(t.net_change(red), -1);
        assert_eq!(t.net_change(green), 1);
    }

    #[test]
    fn uncolored_proxy_gets_no_sharpener() {
        let mut b = SchemeBuilder::new(SchemeConfig::default());
        let red = b.signal("R", Color::Red).unwrap();
        let y = b.uncolored("Y");
        b.transfer(red, &[(y, 1)], "to sink").unwrap();
        let (crn, _) = b.finish().unwrap();
        assert!(crn.find_species("I[Y]").is_none());
        // the seed still exists
        assert!(crn
            .reactions()
            .iter()
            .any(|r| r.label() == Some("seed to sink")));
    }

    #[test]
    fn explicit_proxy_receives_the_feedback() {
        let mut b = SchemeBuilder::new(SchemeConfig::default());
        let g1 = b.signal("G1", Color::Green).unwrap();
        let staging = b.signal("Bs", Color::Blue).unwrap();
        let accum = b.signal("B1", Color::Blue).unwrap();
        let w = b.uncolored("w");
        b.transfer_sharpened_by(g1, &[(staging, 1)], accum, "G->Bs")
            .unwrap();
        b.fast(&[(staging, 2)], &[(accum, 1)], "pair").unwrap();
        b.gated_drain(accum, w, "out").unwrap();
        let (crn, _) = b.finish().unwrap();
        assert!(crn.find_species("I[B1]").is_some(), "proxy dimer exists");
        assert!(crn.find_species("I[Bs]").is_none(), "staging has no dimer");
    }

    #[test]
    fn indicators_exist_per_color() {
        let b = SchemeBuilder::new(SchemeConfig::default());
        for c in Color::ALL {
            let ind = b.indicator(c);
            assert_eq!(b.crn().species_name(ind), c.indicator_name());
        }
    }
}
