//! The cycle-level simulation harness.
//!
//! Driving a compiled system means: inject one input sample per clock
//! cycle, run the kinetics, find the cycle boundaries in the clock
//! waveform, and read every register once per cycle. [`drive_cycles`]
//! does all of it and returns a [`SyncRun`]; [`RunConfig::sim`] selects
//! the kinetic interpretation (deterministic ODE or an exact stochastic
//! method), and [`CycleResources`] carries any pre-built compiled network
//! and integrator workspace a sweep wants to reuse across cells.

use crate::{CompiledSystem, SyncError};
use molseq_kinetics::{
    run_ode_batch, BatchLane, BatchedOdeWorkspace, CompiledCrn, MetricsSink, OdeMethod, OdeOptions,
    OdeWorkspace, Schedule, SimError, SimMethod, SimSpec, Simulation, SsaOptions, StepHook, Trace,
};
use std::collections::HashMap;

/// Configuration for [`drive_cycles`].
#[derive(Clone)]
pub struct RunConfig<'h> {
    /// Kinetic interpretation (rate assignment + jitter).
    pub spec: SimSpec,
    /// Initial guess for the duration of one clock cycle, in simulated
    /// time. The harness extends the simulation automatically (up to
    /// `max_extensions` doublings) if the guess is too small.
    pub cycle_time_hint: f64,
    /// How many times the time horizon may be doubled while hunting for
    /// the requested number of cycles.
    pub max_extensions: u32,
    /// Trace recording interval.
    pub record_interval: f64,
    /// Simulation method driving the kinetics. [`SimMethod::Ode`]
    /// (the default), [`SimMethod::Ssa`] and [`SimMethod::Nrm`] are
    /// supported; the tau-leaping methods reject the harness's input
    /// triggers.
    pub sim: SimMethod,
    /// ODE integration method (used when `sim` is [`SimMethod::Ode`]).
    pub method: OdeMethod,
    /// RNG seed (used by the stochastic methods).
    pub seed: u64,
    /// Optional cooperative interruption hook, forwarded to the
    /// integrator (see [`molseq_kinetics::StepHook`]). The cumulative step
    /// count restarts at every horizon-doubling retry.
    pub step_hook: Option<StepHook<'h>>,
    /// Optional metrics sink, forwarded to the integrator (see
    /// [`molseq_kinetics::SimMetrics`]). Counters **accumulate** across
    /// the harness's horizon-doubling retries, so the sink reports the
    /// total work the harness spent on the cell, not just the final
    /// successful pass.
    pub metrics: Option<MetricsSink<'h>>,
}

impl std::fmt::Debug for RunConfig<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunConfig")
            .field("spec", &self.spec)
            .field("cycle_time_hint", &self.cycle_time_hint)
            .field("max_extensions", &self.max_extensions)
            .field("record_interval", &self.record_interval)
            .field("sim", &self.sim)
            .field("method", &self.method)
            .field("seed", &self.seed)
            .field("step_hook", &self.step_hook.map(|_| "<hook>"))
            .field("metrics", &self.metrics.map(|_| "<sink>"))
            .finish()
    }
}

impl PartialEq for RunConfig<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.cycle_time_hint == other.cycle_time_hint
            && self.max_extensions == other.max_extensions
            && self.record_interval == other.record_interval
            && self.sim == other.sim
            && self.method == other.method
            && self.seed == other.seed
            && match (self.step_hook, other.step_hook) {
                (None, None) => true,
                (Some(a), Some(b)) => {
                    std::ptr::eq(a as *const _ as *const (), b as *const _ as *const ())
                }
                _ => false,
            }
            && match (self.metrics, other.metrics) {
                (None, None) => true,
                (Some(a), Some(b)) => std::ptr::eq(a, b),
                _ => false,
            }
    }
}

impl Default for RunConfig<'_> {
    /// Paper-default rates, 12 time units per cycle as the initial guess,
    /// up to 4 horizon doublings, deterministic stiff (Rosenbrock)
    /// integration.
    fn default() -> Self {
        RunConfig {
            spec: SimSpec::default(),
            cycle_time_hint: 12.0,
            max_extensions: 4,
            record_interval: 0.1,
            sim: SimMethod::Ode,
            method: OdeMethod::Rosenbrock {
                rtol: 1e-5,
                atol: 1e-8,
            },
            seed: 0,
            step_hook: None,
            metrics: None,
        }
    }
}

/// Pre-built simulation resources for [`drive_cycles`], reusable across
/// sweep cells. Both fields are optional: an absent compiled network is
/// compiled per call from `config.spec`, an absent workspace is allocated
/// fresh.
#[derive(Default)]
pub struct CycleResources<'a> {
    /// Pre-built compiled network. When supplied, `config.spec` is
    /// ignored — the rates baked into the compiled network govern the
    /// kinetics. This is the sweep path: compile once,
    /// [`CompiledCrn::rebind`](molseq_kinetics::CompiledCrn::rebind) per
    /// cell, drive the rebound copy.
    pub compiled: Option<&'a CompiledCrn>,
    /// Reusable integrator workspace (ODE methods), so sweeps allocate
    /// integrator buffers once per worker instead of once per cell. Also
    /// reused across the harness's internal horizon-doubling retries.
    pub workspace: Option<&'a mut OdeWorkspace>,
}

/// The result of driving a compiled system for a number of clock cycles.
#[derive(Debug, Clone)]
pub struct SyncRun {
    trace: Trace,
    /// One sampling instant per completed cycle: the midpoint of the k-th
    /// interval during which the clock's red phase is high.
    sample_times: Vec<f64>,
    registers: HashMap<String, Vec<f64>>,
}

impl SyncRun {
    /// Extracts cycle structure from *any* trace of a compiled system —
    /// deterministic or stochastic. Cycle `k` is sampled over the
    /// `k+1`-th interval in which the clock's (dimer-adjusted) red phase
    /// exceeds 90% of the token (the first interval is the initial rest
    /// state); register values are the per-interval maxima of their
    /// dimer-adjusted stored quantity.
    #[must_use]
    pub fn from_trace(system: &CompiledSystem, trace: Trace) -> Self {
        let clock = system.clock();
        let threshold = 0.9 * clock.token;
        let red_terms = crate::stored_value_terms(system.crn(), clock.red);
        let red_series: Vec<f64> = (0..trace.len())
            .map(|i| {
                red_terms
                    .iter()
                    .map(|&(s, w)| w * trace.state(i)[s.index()])
                    .sum()
            })
            .collect();
        let mut intervals = high_intervals(trace.times(), &red_series, threshold);
        if !intervals.is_empty() {
            intervals.remove(0);
        }
        let sample_times: Vec<f64> = intervals.iter().map(|(a, b)| 0.5 * (a + b)).collect();
        let mut registers = HashMap::new();
        for name in system.register_names() {
            let red = system
                .register_species(name)
                .expect("register names come from the system");
            let terms = crate::stored_value_terms(system.crn(), red);
            let series: Vec<f64> = intervals
                .iter()
                .map(|&(a, b)| {
                    trace
                        .times()
                        .iter()
                        .enumerate()
                        .filter(|(_, &t)| t >= a && t <= b)
                        .map(|(i, _)| {
                            terms
                                .iter()
                                .map(|&(s, w)| w * trace.state(i)[s.index()])
                                .sum::<f64>()
                        })
                        .fold(0.0f64, f64::max)
                })
                .collect();
            registers.insert(name.to_owned(), series);
        }
        SyncRun {
            trace,
            sample_times,
            registers,
        }
    }

    /// The full simulation trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The per-cycle sampling instants (cycle `k` was sampled at
    /// `sample_times()[k]`).
    #[must_use]
    pub fn sample_times(&self) -> &[f64] {
        &self.sample_times
    }

    /// Number of completed cycles captured.
    #[must_use]
    pub fn cycles(&self) -> usize {
        self.sample_times.len()
    }

    /// The measured mean clock period, if at least two cycles completed.
    #[must_use]
    pub fn mean_period(&self) -> Option<f64> {
        if self.sample_times.len() < 2 {
            return None;
        }
        let n = self.sample_times.len() - 1;
        Some((self.sample_times[n] - self.sample_times[0]) / n as f64)
    }

    /// A register's value per cycle: `register_series(name)[k]` is the
    /// value committed at the end of cycle `k` (so for a register sourced
    /// by input `x`, index `k` holds `x(k)`; for an output port computing
    /// `f(...)` per cycle, index `k` holds the cycle-`k` result).
    ///
    /// # Errors
    ///
    /// [`SyncError::UnknownPort`] if no such register was captured.
    pub fn register_series(&self, name: &str) -> Result<&[f64], SyncError> {
        self.registers
            .get(name)
            .map(Vec::as_slice)
            .ok_or_else(|| SyncError::UnknownPort { name: name.into() })
    }
}

/// Intervals during which `series` stays above `threshold`, as
/// `(enter, exit)` pairs (the final interval may be cut off by the end of
/// the trace).
fn high_intervals(times: &[f64], series: &[f64], threshold: f64) -> Vec<(f64, f64)> {
    let mut intervals = Vec::new();
    let mut enter: Option<f64> = None;
    for i in 0..times.len() {
        let high = series[i] > threshold;
        match (high, enter) {
            (true, None) => enter = Some(times[i]),
            (false, Some(start)) => {
                intervals.push((start, times[i]));
                enter = None;
            }
            _ => {}
        }
    }
    if let Some(start) = enter {
        if let Some(&last) = times.last() {
            if last > start {
                intervals.push((start, last));
            }
        }
    }
    intervals
}

/// Drives `system` until `cycles` clock cycles have completed, injecting
/// one sample per cycle for every listed input. `config.sim` picks the
/// kinetic interpretation; `resources` optionally carries a pre-built
/// compiled network and a reusable integrator workspace.
///
/// Cycle boundaries and register values are extracted with
/// [`SyncRun::from_trace`]: registers are read as the maximum of their
/// dimer-adjusted stored value over each clock-red plateau. The initial
/// all-red rest state (before the first rotation) is **not** counted as a
/// cycle.
///
/// # Errors
///
/// * [`SyncError::UnknownPort`] for an unknown input name.
/// * [`SyncError::InvalidAmount`] if `cycles` is zero.
/// * Simulation errors are wrapped in [`SyncError::Simulation`].
///
/// # Panics
///
/// Panics if `config.sim` is a tau-leaping method: the leapers reject the
/// per-cycle input triggers this harness relies on.
pub fn drive_cycles(
    system: &CompiledSystem,
    inputs: &[(&str, &[f64])],
    cycles: usize,
    config: &RunConfig,
    resources: CycleResources<'_>,
) -> Result<SyncRun, SyncError> {
    assert!(
        matches!(config.sim, SimMethod::Ode | SimMethod::Ssa | SimMethod::Nrm),
        "the cycle harness injects inputs via triggers, which tau-leaping does not support"
    );
    if cycles == 0 {
        return Err(SyncError::InvalidAmount { value: 0.0 });
    }
    let owned_compiled;
    let compiled = match resources.compiled {
        Some(c) => c,
        None => {
            owned_compiled = CompiledCrn::new(system.crn(), &config.spec);
            &owned_compiled
        }
    };
    let mut owned_workspace;
    let workspace = match resources.workspace {
        Some(w) => w,
        None => {
            owned_workspace = OdeWorkspace::new();
            &mut owned_workspace
        }
    };
    let mut schedule = Schedule::new();
    for (name, samples) in inputs {
        schedule = schedule.trigger(system.input_trigger(name, samples)?);
    }

    let init = system.initial_state();

    let mut t_end = config.cycle_time_hint * (cycles as f64 + 1.0);
    let mut last_err: Option<SimError> = None;
    let mut best_found = 0usize;
    for _ in 0..=config.max_extensions {
        let mut sim = Simulation::new(system.crn(), compiled)
            .init(&init)
            .schedule(&schedule)
            .workspace(&mut *workspace);
        match config.sim {
            SimMethod::Ode => {
                sim = sim.options(
                    OdeOptions::default()
                        .with_t_end(t_end)
                        .with_record_interval(config.record_interval)
                        .with_method(config.method),
                );
            }
            _ => {
                sim = sim.method(config.sim).options(
                    SsaOptions::default()
                        .with_t_end(t_end)
                        .with_record_interval(config.record_interval)
                        .with_seed(config.seed),
                );
            }
        }
        if let Some(hook) = config.step_hook {
            sim = sim.step_hook(hook);
        }
        if let Some(sink) = config.metrics {
            sim = sim.metrics(sink);
        }
        let trace = match sim.run() {
            Ok(t) => t,
            Err(e @ SimError::Interrupted { .. }) => {
                // a cooperative budget fired: retrying on a doubled
                // horizon would be interrupted again immediately
                return Err(SyncError::Simulation(e));
            }
            Err(e) => {
                last_err = Some(e);
                t_end *= 2.0;
                continue;
            }
        };

        let run = SyncRun::from_trace(system, trace);
        if run.cycles() >= cycles {
            let mut run = run;
            run.sample_times.truncate(cycles);
            for series in run.registers.values_mut() {
                series.truncate(cycles);
            }
            return Ok(run);
        }
        best_found = best_found.max(run.cycles());
        t_end *= 2.0;
    }
    Err(last_err.map_or(
        SyncError::InsufficientCycles {
            requested: cycles,
            found: best_found,
        },
        SyncError::Simulation,
    ))
}

/// One cell of a [`drive_cycles_batch`] call: a rate-bound compiled copy
/// of the shared system network plus that cell's run configuration.
pub struct BatchCell<'a, 'h> {
    /// The cell's compiled network — typically
    /// [`CompiledCrn::rebind`](molseq_kinetics::CompiledCrn::rebind) of one
    /// shared compilation, so every cell keeps the same structure.
    /// `config.spec` is ignored in favour of the rates baked in here.
    pub compiled: &'a CompiledCrn,
    /// The cell's harness configuration. `sim` must be [`SimMethod::Ode`]
    /// and `method` must be [`OdeMethod::Rosenbrock`]; `step_hook` and
    /// `metrics` are forwarded per cell.
    pub config: RunConfig<'h>,
}

/// Drives up to `cells.len()` rate-bound copies of `system` in lock-step
/// through the batched ODE engine
/// ([`run_ode_batch`](molseq_kinetics::run_ode_batch)): one shared
/// symbolic factorization, all cells advancing together, each lane
/// bit-identical to a solo [`drive_cycles`] call with the same
/// configuration. Inputs, the cycle count and the initial state are
/// shared; rates, hooks, sinks and extension policies are per cell.
///
/// Each cell keeps the scalar harness's horizon-doubling behaviour
/// independently: a cell that comes up short of `cycles` retries on a
/// doubled span (up to its own `max_extensions`) in the next batched
/// round together with every other still-unfinished cell, so stragglers
/// re-batch with each other rather than serializing.
///
/// # Errors
///
/// Shared-setup failures ([`SyncError::UnknownPort`],
/// [`SyncError::InvalidAmount`] for zero cycles) fail the whole call;
/// per-cell simulation failures are reported in the per-cell results,
/// with the same error mapping as [`drive_cycles`].
///
/// # Panics
///
/// Panics if any cell's `config.sim` is not [`SimMethod::Ode`] or its
/// `config.method` is not [`OdeMethod::Rosenbrock`] — the batched engine
/// is the deterministic stiff path; route other methods through
/// [`drive_cycles`].
pub fn drive_cycles_batch(
    system: &CompiledSystem,
    inputs: &[(&str, &[f64])],
    cycles: usize,
    cells: &[BatchCell<'_, '_>],
    workspace: &mut BatchedOdeWorkspace,
) -> Result<Vec<Result<SyncRun, SyncError>>, SyncError> {
    for cell in cells {
        assert!(
            matches!(cell.config.sim, SimMethod::Ode)
                && matches!(cell.config.method, OdeMethod::Rosenbrock { .. }),
            "drive_cycles_batch is the deterministic stiff path (Ode + Rosenbrock)"
        );
    }
    if cycles == 0 {
        return Err(SyncError::InvalidAmount { value: 0.0 });
    }
    let mut schedule = Schedule::new();
    for (name, samples) in inputs {
        schedule = schedule.trigger(system.input_trigger(name, samples)?);
    }
    let init = system.initial_state();

    struct CellProgress {
        t_end: f64,
        attempts_left: u32,
        last_err: Option<SimError>,
        best_found: usize,
        done: Option<Result<SyncRun, SyncError>>,
    }
    let mut progress: Vec<CellProgress> = cells
        .iter()
        .map(|cell| CellProgress {
            t_end: cell.config.cycle_time_hint * (cycles as f64 + 1.0),
            attempts_left: cell.config.max_extensions + 1,
            last_err: None,
            best_found: 0,
            done: None,
        })
        .collect();

    loop {
        let active: Vec<usize> = progress
            .iter()
            .enumerate()
            .filter(|(_, p)| p.done.is_none() && p.attempts_left > 0)
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            break;
        }
        let lanes: Vec<BatchLane> = active
            .iter()
            .map(|&i| {
                let config = &cells[i].config;
                let mut options = OdeOptions::default()
                    .with_t_end(progress[i].t_end)
                    .with_record_interval(config.record_interval)
                    .with_method(config.method);
                if let Some(hook) = config.step_hook {
                    options = options.with_step_hook(hook);
                }
                if let Some(sink) = config.metrics {
                    options = options.with_metrics(sink);
                }
                BatchLane {
                    compiled: cells[i].compiled,
                    init: &init,
                    schedule: &schedule,
                    options,
                }
            })
            .collect();
        let results = run_ode_batch(system.crn(), &lanes, workspace);
        for (&i, result) in active.iter().zip(results) {
            let p = &mut progress[i];
            p.attempts_left -= 1;
            match result {
                Ok(trace) => {
                    let run = SyncRun::from_trace(system, trace);
                    if run.cycles() >= cycles {
                        let mut run = run;
                        run.sample_times.truncate(cycles);
                        for series in run.registers.values_mut() {
                            series.truncate(cycles);
                        }
                        p.done = Some(Ok(run));
                    } else {
                        p.best_found = p.best_found.max(run.cycles());
                        p.t_end *= 2.0;
                    }
                }
                Err(e @ SimError::Interrupted { .. }) => {
                    // a cooperative budget fired: retrying on a doubled
                    // horizon would be interrupted again immediately
                    p.done = Some(Err(SyncError::Simulation(e)));
                }
                Err(e) => {
                    p.last_err = Some(e);
                    p.t_end *= 2.0;
                }
            }
        }
    }

    Ok(progress
        .into_iter()
        .map(|p| {
            p.done.unwrap_or_else(|| {
                Err(p.last_err.map_or(
                    SyncError::InsufficientCycles {
                        requested: cycles,
                        found: p.best_found,
                    },
                    SyncError::Simulation,
                ))
            })
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockSpec, SyncCircuit};

    #[test]
    fn high_intervals_finds_plateaus() {
        let times = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let series = [100.0, 100.0, 0.0, 0.0, 100.0, 100.0];
        let iv = high_intervals(&times, &series, 90.0);
        assert_eq!(iv, vec![(0.0, 2.0), (4.0, 5.0)]);
    }

    #[test]
    fn high_intervals_empty_for_flat_low() {
        let times = [0.0, 1.0];
        let series = [0.0, 0.0];
        assert!(high_intervals(&times, &series, 90.0).is_empty());
    }

    #[test]
    fn zero_cycles_is_rejected() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        c.output("y", x);
        let sys = c.compile().unwrap();
        assert!(drive_cycles(
            &sys,
            &[],
            0,
            &RunConfig::default(),
            CycleResources::default()
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "tau-leaping")]
    fn tau_methods_are_rejected_by_the_harness() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        c.output("y", x);
        let sys = c.compile().unwrap();
        let config = RunConfig {
            sim: SimMethod::TauLeap,
            ..RunConfig::default()
        };
        let _ = drive_cycles(&sys, &[], 1, &config, CycleResources::default());
    }

    /// The harness drives the same circuit under the exact stochastic
    /// interpretation: the one-cycle register delay survives molecular
    /// noise at the default token count.
    #[test]
    fn stochastic_harness_delays_by_one_cycle() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        let d = c.delay("d", x);
        c.output("y", d);
        let sys = c.compile().unwrap();

        let samples = [60.0, 20.0];
        let config = RunConfig {
            sim: SimMethod::Ssa,
            seed: 7,
            ..RunConfig::default()
        };
        let run = drive_cycles(
            &sys,
            &[("x", &samples)],
            3,
            &config,
            CycleResources::default(),
        )
        .unwrap();
        let y_series = run.register_series("y").unwrap();
        for (k, &expect) in samples.iter().enumerate() {
            assert!(
                (y_series[k + 1] - expect).abs() < 0.25 * expect,
                "y at cycle {}: {} vs {expect} (full: {y_series:?})",
                k + 1,
                y_series[k + 1]
            );
        }
    }

    /// The batched harness reproduces solo scalar runs bit for bit: same
    /// sample times, same register series, per rate binding.
    #[test]
    fn batched_harness_matches_scalar_bitwise() {
        use molseq_kinetics::SimSpec;
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        let d = c.delay("d", x);
        c.output("y", d);
        let sys = c.compile().unwrap();
        let samples = [40.0, 10.0, 70.0];
        let inputs: [(&str, &[f64]); 1] = [("x", &samples)];

        let base = CompiledCrn::new(sys.crn(), &SimSpec::default());
        let ratios = [200.0, 1000.0, 5000.0];
        let compiled: Vec<CompiledCrn> = ratios
            .iter()
            .map(|&r| base.rebind(&SimSpec::new(molseq_crn::RateAssignment::from_ratio(r))))
            .collect();
        let cells: Vec<BatchCell> = compiled
            .iter()
            .map(|c| BatchCell {
                compiled: c,
                config: RunConfig::default(),
            })
            .collect();
        let mut ws = BatchedOdeWorkspace::new();
        let batched = drive_cycles_batch(&sys, &inputs, 3, &cells, &mut ws).unwrap();
        for (c, result) in compiled.iter().zip(batched) {
            let scalar = drive_cycles(
                &sys,
                &inputs,
                3,
                &RunConfig::default(),
                CycleResources {
                    compiled: Some(c),
                    workspace: None,
                },
            )
            .unwrap();
            let run = result.unwrap();
            assert_eq!(scalar.sample_times(), run.sample_times());
            for name in sys.register_names() {
                assert_eq!(
                    scalar.register_series(name).unwrap(),
                    run.register_series(name).unwrap(),
                    "register {name}"
                );
            }
        }
    }

    #[test]
    fn batched_harness_rejects_zero_cycles() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        c.output("y", x);
        let sys = c.compile().unwrap();
        let compiled = CompiledCrn::new(sys.crn(), &molseq_kinetics::SimSpec::default());
        let cells = [BatchCell {
            compiled: &compiled,
            config: RunConfig::default(),
        }];
        assert!(matches!(
            drive_cycles_batch(&sys, &[], 0, &cells, &mut BatchedOdeWorkspace::new()),
            Err(SyncError::InvalidAmount { .. })
        ));
    }

    /// End-to-end: a single register delays its input by exactly one
    /// cycle.
    #[test]
    fn register_delays_by_one_cycle() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        let d = c.delay("d", x);
        c.output("y", d);
        let sys = c.compile().unwrap();

        let samples = [40.0, 10.0, 70.0, 0.0];
        let sink = std::cell::Cell::new(molseq_kinetics::SimMetrics::default());
        let config = RunConfig {
            metrics: Some(&sink),
            ..RunConfig::default()
        };
        let run = drive_cycles(
            &sys,
            &[("x", &samples)],
            5,
            &config,
            CycleResources::default(),
        )
        .unwrap();
        let metrics = sink.get();
        assert!(
            metrics.ode_steps_accepted > 0 && metrics.final_time > 0.0,
            "the harness forwards the sink to the integrator: {metrics:?}"
        );
        let d_series = run.register_series("d").unwrap();
        let y_series = run.register_series("y").unwrap();

        // d at cycle boundary k holds x(k); y holds d one cycle later.
        for (k, &expect) in samples.iter().enumerate() {
            assert!(
                (d_series[k] - expect).abs() < 1.5,
                "d at cycle {k}: {} vs {expect} (full: {d_series:?})",
                d_series[k]
            );
        }
        for (k, &expect) in samples.iter().enumerate() {
            assert!(
                (y_series[k + 1] - expect).abs() < 1.5,
                "y at cycle {}: {} vs {expect} (full: {y_series:?})",
                k + 1,
                y_series[k + 1]
            );
        }
    }
}
