//! Finite-state machines — general sequential computation on the clocked
//! framework.
//!
//! States are **one-hot**: state `i` is a register holding the amplitude
//! `A` when active and `0` otherwise. The machine reads one binary input
//! per clock cycle (`0` or `A`) and moves along its transition table.
//!
//! The next-state logic is a *complementary split* of each active state:
//!
//! ```text
//! stay₀ = max(Sᵢ − 2·x, 0)          (the share that saw input 0)
//! go₁   = Sᵢ − stay₀                 (the share that saw input 1)
//! ```
//!
//! `stay₀ + go₁ = Sᵢ` exactly, so the total state quantity is conserved by
//! construction; each share commits into its transition target, and
//! because commits into one register **sum**, any number of transitions
//! may converge on a state. The split needs both combinational stages
//! (`go₁` is a second-stage subtraction), which the compiler's staging
//! discipline provides; a transition therefore completes in one clock
//! cycle, exactly like a flip-flop-based FSM in the electronic analogy.

use crate::{
    drive_cycles, ClockSpec, CompiledSystem, CycleResources, RunConfig, SyncCircuit, SyncError,
    SyncRun,
};

/// A compiled Moore finite-state machine with a single binary input.
///
/// # Examples
///
/// A parity tracker (two states, toggles on every `1`):
///
/// ```no_run
/// use molseq_sync::{ClockSpec, Fsm, RunConfig};
///
/// # fn main() -> Result<(), molseq_sync::SyncError> {
/// // state 0: on input 0 stay, on input 1 go to state 1 — and vice versa
/// let fsm = Fsm::build(ClockSpec::default(), 60.0, &[[0, 1], [1, 0]], 0)?;
/// let (run, states) = fsm.run(&[true, true, true], &RunConfig::default())?;
/// # let _ = run;
/// assert_eq!(states.last(), Some(&1), "odd number of ones");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fsm {
    system: CompiledSystem,
    state_count: usize,
    amplitude: f64,
}

impl Fsm {
    /// Builds a machine from its transition table: `delta[i] = [to0, to1]`
    /// sends state `i` to `to0` on input 0 and `to1` on input 1. The
    /// machine starts in `initial` with the full amplitude.
    ///
    /// # Errors
    ///
    /// [`SyncError::InvalidAmount`] for an empty table, an out-of-range
    /// target or initial state, or a bad amplitude; compilation errors are
    /// propagated.
    pub fn build(
        clock: ClockSpec,
        amplitude: f64,
        delta: &[[usize; 2]],
        initial: usize,
    ) -> Result<Self, SyncError> {
        let m = delta.len();
        if m == 0 || initial >= m {
            return Err(SyncError::InvalidAmount { value: m as f64 });
        }
        if !(amplitude.is_finite() && amplitude > 0.0) {
            return Err(SyncError::InvalidAmount { value: amplitude });
        }
        for row in delta {
            for &target in row {
                if target >= m {
                    return Err(SyncError::InvalidAmount {
                        value: target as f64,
                    });
                }
            }
        }

        let mut c = SyncCircuit::new(clock);
        let x = c.input("x");
        // 2·x dominates any single state's amplitude when x is high
        let x2 = c.double(x);

        let states: Vec<_> = (0..m)
            .map(|i| {
                c.feedback_delay_with_init(
                    &format!("s{i}"),
                    if i == initial { amplitude } else { 0.0 },
                )
            })
            .collect();

        for (i, row) in delta.iter().enumerate() {
            // complementary split: stay0 + go1 = S_i exactly
            let stay0 = c.sub(states[i], x2); // green stage
            let go1 = c.sub(states[i], stay0); // blue stage (commit-only)
            c.add_register_source(&format!("s{}", row[0]), stay0)?;
            c.add_register_source(&format!("s{}", row[1]), go1)?;
        }

        let system = c.compile()?;
        Ok(Fsm {
            system,
            state_count: m,
            amplitude,
        })
    }

    /// The compiled system (input port `"x"`, state registers `s0…`).
    #[must_use]
    pub fn system(&self) -> &CompiledSystem {
        &self.system
    }

    /// Number of states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// The one-hot amplitude.
    #[must_use]
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Converts a bit pattern to per-cycle input samples.
    #[must_use]
    pub fn input_train(&self, bits: &[bool]) -> Vec<f64> {
        bits.iter()
            .map(|&b| if b { self.amplitude } else { 0.0 })
            .collect()
    }

    /// Decodes the active state at cycle boundary `cycle`: the state
    /// register holding more than half the amplitude.
    ///
    /// # Errors
    ///
    /// [`SyncError::InsufficientCycles`] if `cycle` is out of range;
    /// [`SyncError::UnknownPort`] if the run lacks the state registers.
    pub fn decode(&self, run: &SyncRun, cycle: usize) -> Result<usize, SyncError> {
        let mut best = (0usize, f64::NEG_INFINITY);
        for i in 0..self.state_count {
            let series = run.register_series(&format!("s{i}"))?;
            let value = *series.get(cycle).ok_or(SyncError::InsufficientCycles {
                requested: cycle + 1,
                found: series.len(),
            })?;
            if value > best.1 {
                best = (i, value);
            }
        }
        Ok(best.0)
    }

    /// Runs a bit sequence through the machine and returns the run plus
    /// the decoded state after each cycle (`states[k]` is the state after
    /// consuming `bits[k]`).
    ///
    /// # Errors
    ///
    /// Propagates harness errors.
    pub fn run(
        &self,
        bits: &[bool],
        config: &RunConfig,
    ) -> Result<(SyncRun, Vec<usize>), SyncError> {
        let samples = self.input_train(bits);
        let run = drive_cycles(
            &self.system,
            &[("x", &samples)],
            bits.len(),
            config,
            CycleResources::default(),
        )?;
        let states = (0..bits.len())
            .map(|k| self.decode(&run, k))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((run, states))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_tables() {
        assert!(Fsm::build(ClockSpec::default(), 60.0, &[], 0).is_err());
        assert!(Fsm::build(ClockSpec::default(), 60.0, &[[0, 2]], 0).is_err());
        assert!(Fsm::build(ClockSpec::default(), 60.0, &[[0, 0]], 5).is_err());
        assert!(Fsm::build(ClockSpec::default(), -1.0, &[[0, 0]], 0).is_err());
    }

    #[test]
    fn input_train_maps_bits() {
        let fsm = Fsm::build(ClockSpec::default(), 50.0, &[[0, 0]], 0).unwrap();
        assert_eq!(fsm.input_train(&[true, false]), vec![50.0, 0.0]);
        assert_eq!(fsm.state_count(), 1);
        assert_eq!(fsm.amplitude(), 50.0);
    }

    #[test]
    fn parity_machine_toggles() {
        let fsm = Fsm::build(ClockSpec::default(), 60.0, &[[0, 1], [1, 0]], 0).unwrap();
        let (_, states) = fsm
            .run(&[true, false, true, true], &RunConfig::default())
            .unwrap();
        assert_eq!(states, vec![1, 1, 0, 1]);
    }

    #[test]
    fn sequence_detector_latches() {
        // detect "11": S0 → S1 on a 1, S1 → S2 on a second 1; S2 sticky
        let fsm = Fsm::build(ClockSpec::default(), 60.0, &[[0, 1], [0, 2], [2, 2]], 0).unwrap();
        let (_, states) = fsm
            .run(&[true, false, true, true, false], &RunConfig::default())
            .unwrap();
        assert_eq!(states, vec![1, 0, 1, 2, 2]);
    }
}
