//! The paper's finite-state example: a ripple-carry binary counter.
//!
//! Each bit is a delay element holding either `0` or the amplitude `A`
//! (logical 0/1). On every clock cycle, bit `i` adds its carry-in to its
//! stored value, keeps the sum modulo `2A`, and registers a carry of `A`
//! for bit `i + 1` whenever the sum reached `2A`. Bit 0's carry-in is the
//! external pulse input.
//!
//! The modulo-`2A` arithmetic uses only the rate-independent primitives:
//!
//! ```text
//! s     = bit + carry_in            (sum: 0, A or 2A)
//! carry = max(s − A, 0)             (clamped subtraction against the
//!                                    constant register K = A)
//! bit'  = max(s − 2·carry, 0)       (0 ↦ 0, A ↦ A, 2A ↦ 0)
//! ```
//!
//! Carries propagate through a register, so bit `i` reacts to an overflow
//! of bit `i − 1` one cycle later — a classic ripple counter. After the
//! last pulse, allow `n` settle cycles before reading an `n`-bit count.

use crate::{ClockSpec, CompiledSystem, SyncCircuit, SyncError, SyncRun};

/// A compiled ripple-carry binary counter.
///
/// # Examples
///
/// ```no_run
/// use molseq_sync::{drive_cycles, BinaryCounter, ClockSpec, CycleResources, RunConfig};
///
/// # fn main() -> Result<(), molseq_sync::SyncError> {
/// let counter = BinaryCounter::build(3, 60.0, ClockSpec::default())?;
/// // five pulses, then three settle cycles
/// let pulses = counter.pulse_train(&[true, true, true, true, true, false, false, false]);
/// let run = drive_cycles(
///     counter.system(),
///     &[("pulse", &pulses)],
///     9,
///     &RunConfig::default(),
///     CycleResources::default(),
/// )?;
/// assert_eq!(counter.decode(&run, 8)?, 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BinaryCounter {
    system: CompiledSystem,
    bits: usize,
    amplitude: f64,
}

impl BinaryCounter {
    /// Builds an `bits`-bit counter with logical-1 amplitude `amplitude`.
    ///
    /// # Errors
    ///
    /// [`SyncError::InvalidAmount`] for a zero bit count or a bad
    /// amplitude; compilation errors are propagated.
    pub fn build(bits: usize, amplitude: f64, clock: ClockSpec) -> Result<Self, SyncError> {
        if bits == 0 {
            return Err(SyncError::InvalidAmount { value: 0.0 });
        }
        if !(amplitude.is_finite() && amplitude > 0.0) {
            return Err(SyncError::InvalidAmount { value: amplitude });
        }
        let mut c = SyncCircuit::new(clock);
        let pulse = c.input("pulse");
        let k = c.constant("K", amplitude);

        let mut carry_in = pulse;
        for i in 0..bits {
            // feedback register: its next-value is bound below
            let bit = c.feedback_delay(&format!("b{i}"));
            let s = c.add(&[bit, carry_in]);
            let carry = c.sub(s, k); // green-stage subtraction
            let cc = c.double(carry); // blue stage (consumes settled carry)
            let bit_next = c.sub(s, cc); // blue-stage subtraction → commit only
            c.rebind_register(&format!("b{i}"), bit_next)?;
            let carry_reg = c.delay(&format!("c{i}"), carry);
            carry_in = carry_reg;
        }
        // expose the final overflow so it does not dangle silently
        c.output("overflow", carry_in);

        let system = c.compile()?;
        Ok(BinaryCounter {
            system,
            bits,
            amplitude,
        })
    }

    /// The compiled system (drive it with
    /// [`drive_cycles`](crate::drive_cycles); the input port is
    /// `"pulse"`).
    #[must_use]
    pub fn system(&self) -> &CompiledSystem {
        &self.system
    }

    /// Number of bits.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The logical-1 amplitude.
    #[must_use]
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Converts a pulse pattern into the per-cycle input samples
    /// (`true` → amplitude, `false` → 0).
    #[must_use]
    pub fn pulse_train(&self, pulses: &[bool]) -> Vec<f64> {
        pulses
            .iter()
            .map(|&p| if p { self.amplitude } else { 0.0 })
            .collect()
    }

    /// Reads the counter state at cycle boundary `cycle`, thresholding
    /// each bit at half the amplitude.
    ///
    /// # Errors
    ///
    /// [`SyncError::UnknownPort`] if the run does not contain the bit
    /// registers; [`SyncError::InsufficientCycles`] if `cycle` is out of
    /// range.
    pub fn decode(&self, run: &SyncRun, cycle: usize) -> Result<u32, SyncError> {
        let mut value = 0u32;
        for i in 0..self.bits {
            let series = run.register_series(&format!("b{i}"))?;
            let sample = series.get(cycle).ok_or(SyncError::InsufficientCycles {
                requested: cycle + 1,
                found: series.len(),
            })?;
            if *sample > 0.5 * self.amplitude {
                value |= 1 << i;
            }
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{drive_cycles, CycleResources, RunConfig};

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(BinaryCounter::build(0, 60.0, ClockSpec::default()).is_err());
        assert!(BinaryCounter::build(3, -1.0, ClockSpec::default()).is_err());
        assert!(BinaryCounter::build(3, f64::NAN, ClockSpec::default()).is_err());
    }

    #[test]
    fn pulse_train_maps_booleans() {
        let counter = BinaryCounter::build(2, 50.0, ClockSpec::default()).unwrap();
        assert_eq!(
            counter.pulse_train(&[true, false, true]),
            vec![50.0, 0.0, 50.0]
        );
        assert_eq!(counter.bits(), 2);
        assert_eq!(counter.amplitude(), 50.0);
    }

    /// The headline behaviour: three pulses into a 2-bit counter leave the
    /// bits encoding 3 after the carries have rippled.
    #[test]
    fn counts_three_pulses() {
        let counter = BinaryCounter::build(2, 60.0, ClockSpec::default()).unwrap();
        let pulses = counter.pulse_train(&[true, true, true, false, false]);
        let run = drive_cycles(
            counter.system(),
            &[("pulse", &pulses)],
            6,
            &RunConfig::default(),
            CycleResources::default(),
        )
        .unwrap();
        let value = counter.decode(&run, 5).unwrap();
        assert_eq!(
            value,
            3,
            "b0={:?} b1={:?}",
            run.register_series("b0").unwrap(),
            run.register_series("b1").unwrap()
        );
    }
}
