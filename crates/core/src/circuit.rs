//! The circuit-to-reaction lowering pass (and the [`SyncCircuit`] façade).
//!
//! The circuit IR itself — expression DAG, register table, ports,
//! hierarchy, and the textual netlist format — lives in `molseq-netlist`
//! ([`Netlist`]). This module owns the *lowering*: [`compile_netlist`]
//! maps a flat netlist onto the three-phase color scheme:
//!
//! * register contents rest in **red** at the start of each cycle (this is
//!   when the harness samples them);
//! * the red→green phase delivers register read-values (and injected
//!   inputs) into the **green stage**, where first-level combinational
//!   logic settles as fast reactions;
//! * the green→blue phase carries settled green values into the **blue
//!   stage** for second-level logic;
//! * the blue→red phase **commits** blue values into next-cycle register
//!   contents (and output/waste sinks).
//!
//! The stage discipline exists for one reason: clamped subtraction
//! ([`Netlist::sub`]) works by letting the subtrahend annihilate the
//! result, and nothing downstream may consume that result until the
//! annihilation has settled. Because a phase transfer cannot ignite until
//! the previous color category has fully drained, the phase boundary *is*
//! the settling barrier — a subtraction's consumers simply live in the next
//! stage (enforced automatically), and a blue-stage subtraction may only
//! feed commits. Purely flow-through operations (add, scale, fan-out) have
//! no such hazard and may chain freely within a stage.
//!
//! Lowering folds data movement into as few reactions as possible:
//!
//! | circuit construct        | reactions emitted                           |
//! |--------------------------|---------------------------------------------|
//! | fan-out to N consumers   | one fast reaction with N copy products      |
//! | sole consumer            | the phase transfer moves the value directly |
//! | weighted sum term (w)    | the delivering reaction yields w results    |
//! | multi-source commit      | one transfer with one product per register  |
//! | annihilation (subtract)  | `m → dif`, `s + dif → ∅`, residue drain     |

use crate::system::{ClockHandles, CompiledSystem, RegisterHandles};
use crate::{ClockSpec, Color, SchemeBuilder, SyncError};
use molseq_crn::SpeciesId;
use molseq_netlist::{parse_netlist, NetlistError, NodeOp, ParseError, Register};
use std::collections::HashMap;

pub use molseq_netlist::{Netlist, Node};

impl From<NetlistError> for SyncError {
    fn from(e: NetlistError) -> Self {
        match e {
            NetlistError::UnknownRegister { name }
            | NetlistError::UnknownInput { name }
            | NetlistError::UnconnectedInput { name } => SyncError::UnknownPort { name },
            NetlistError::InvalidNode { index } => SyncError::UnknownNode { index },
        }
    }
}

/// Lowers a [`Netlist`] to a complete reaction network under the given
/// clock parameters.
///
/// # Errors
///
/// * [`SyncError::DuplicatePort`] — an input/register/output name reused.
/// * [`SyncError::UnknownNode`] — a [`Node`] from a different netlist.
/// * [`SyncError::UnsupportedScale`] — a scale factor or sum weight out of
///   range.
/// * [`SyncError::CombinationalCycle`] — a loop not broken by a delay,
///   or combinational depth that does not fit the two stages (deepen
///   with registers).
/// * [`SyncError::InvalidAmount`] — a bad initial value or clock token.
pub fn compile_netlist(netlist: Netlist, clock: ClockSpec) -> Result<CompiledSystem, SyncError> {
    Compiler::new(netlist, clock)?.run()
}

/// An error from [`compile_netlist_source`]: either the text failed to
/// parse/elaborate (with a source position) or the circuit failed to
/// lower.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistSourceError {
    /// The netlist text did not parse or elaborate.
    Parse(ParseError),
    /// The elaborated circuit did not lower to reactions.
    Compile(SyncError),
}

impl std::fmt::Display for NetlistSourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistSourceError::Parse(e) => write!(f, "{e}"),
            NetlistSourceError::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NetlistSourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetlistSourceError::Parse(e) => Some(e),
            NetlistSourceError::Compile(e) => Some(e),
        }
    }
}

/// Parses netlist text (top = last module) and lowers it in one step.
///
/// # Errors
///
/// [`NetlistSourceError::Parse`] with line/column for text problems;
/// [`NetlistSourceError::Compile`] for circuits that do not lower.
pub fn compile_netlist_source(
    src: &str,
    clock: ClockSpec,
) -> Result<CompiledSystem, NetlistSourceError> {
    let net = parse_netlist(src).map_err(NetlistSourceError::Parse)?;
    compile_netlist(net, clock).map_err(NetlistSourceError::Compile)
}

/// The register-transfer-level builder: a thin façade over
/// [`Netlist`] that pairs the IR with a [`ClockSpec`] and compiles via
/// [`compile_netlist`] (the one lowering path, shared with the textual
/// netlist front-end and `SfgBuilder`).
///
/// Construction methods never fail; all validation happens in
/// [`compile`](Self::compile) so that circuits can be assembled fluently.
///
/// # Examples
///
/// The moving-average filter `y(n) = (x(n) + x(n−1)) / 2`:
///
/// ```
/// use molseq_sync::{ClockSpec, SyncCircuit};
///
/// # fn main() -> Result<(), molseq_sync::SyncError> {
/// let mut c = SyncCircuit::new(ClockSpec::default());
/// let x = c.input("x");
/// let d = c.delay("d", x);          // d(n+1) = x(n)
/// let sum = c.add(&[x, d]);
/// let y = c.halve(sum);
/// c.output("y", y);                 // y readable one cycle later
/// let system = c.compile()?;
/// assert!(system.crn().reactions().len() > 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SyncCircuit {
    clock: ClockSpec,
    net: Netlist,
}

impl SyncCircuit {
    /// Creates an empty circuit with the given clock parameters.
    #[must_use]
    pub fn new(clock: ClockSpec) -> Self {
        SyncCircuit {
            clock,
            net: Netlist::new(),
        }
    }

    /// Wraps an already-built IR (e.g. from the netlist parser) with
    /// clock parameters.
    #[must_use]
    pub fn from_netlist(net: Netlist, clock: ClockSpec) -> Self {
        SyncCircuit { clock, net }
    }

    /// The underlying IR.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.net
    }

    /// Declares an external input port. One sample per clock cycle is
    /// injected by the harness (see
    /// [`CompiledSystem::input_trigger`]).
    pub fn input(&mut self, name: &str) -> Node {
        self.net.input(name)
    }

    /// Declares a delay element (register): the returned node reads the
    /// register's *current* value; its *next* value is `source`.
    /// Initial value 0.
    pub fn delay(&mut self, name: &str, source: Node) -> Node {
        self.net.delay(name, source, 0.0)
    }

    /// Like [`delay`](Self::delay) with an explicit initial value.
    pub fn delay_with_init(&mut self, name: &str, source: Node, init: f64) -> Node {
        self.net.delay(name, source, init)
    }

    /// Declares a register whose next-value source is supplied later with
    /// [`rebind_register`](Self::rebind_register) — the way to build
    /// feedback loops (the register itself breaks the cycle). Initial
    /// value 0; a register left unbound fails compilation.
    pub fn feedback_delay(&mut self, name: &str) -> Node {
        self.net.register(name, 0.0)
    }

    /// Like [`feedback_delay`](Self::feedback_delay) with an explicit
    /// initial value.
    pub fn feedback_delay_with_init(&mut self, name: &str, init: f64) -> Node {
        self.net.register(name, init)
    }

    /// Points the register `name` at a (new) next-value source, replacing
    /// any previous sources.
    ///
    /// # Errors
    ///
    /// [`SyncError::UnknownPort`] if no register has that name.
    pub fn rebind_register(&mut self, name: &str, source: Node) -> Result<(), SyncError> {
        self.net.bind(name, source).map_err(SyncError::from)
    }

    /// Adds a further next-value source to register `name`: the committed
    /// values of all sources **sum** into the register. This is how
    /// multi-term next-state functions are built when the terms are
    /// second-stage subtraction results (which may feed commits but not
    /// adders).
    ///
    /// # Errors
    ///
    /// [`SyncError::UnknownPort`] if no register has that name.
    pub fn add_register_source(&mut self, name: &str, source: Node) -> Result<(), SyncError> {
        self.net.commit(name, source).map_err(SyncError::from)
    }

    /// Declares a constant source: a register initialized to `value` that
    /// feeds itself, regenerating the quantity every cycle.
    pub fn constant(&mut self, name: &str, value: f64) -> Node {
        self.net.constant(name, value)
    }

    /// Sums any number of values.
    pub fn add(&mut self, terms: &[Node]) -> Node {
        self.net.add(terms)
    }

    /// A weighted sum `Σ wᵢ·termᵢ` with integer weights folded into the
    /// delivering transfers (no extra scaling stage).
    pub fn add_weighted(&mut self, terms: &[(Node, u32)]) -> Node {
        self.net.add_weighted(terms)
    }

    /// Multiplies a value by the rational `p/q` (with `q ∈ 1..=3`).
    pub fn scale(&mut self, src: Node, p: u32, q: u32) -> Node {
        self.net.scale(src, p, q)
    }

    /// Halves a value (`scale` by 1/2).
    pub fn halve(&mut self, src: Node) -> Node {
        self.net.scale(src, 1, 2)
    }

    /// Doubles a value (`scale` by 2).
    pub fn double(&mut self, src: Node) -> Node {
        self.net.scale(src, 2, 1)
    }

    /// Clamped subtraction: `max(minuend − subtrahend, 0)`.
    ///
    /// The result settles behind a phase boundary; consumers are staged
    /// automatically. A subtraction whose result feeds further logic that
    /// is *itself* beyond the second stage is rejected at compile time —
    /// break such chains with a [`delay`](Self::delay).
    pub fn sub(&mut self, minuend: Node, subtrahend: Node) -> Node {
        self.net.sub(minuend, subtrahend)
    }

    /// Declares an output port fed by `source`. Outputs are implemented as
    /// registers whose stored value is discarded after one cycle, so the
    /// value of `source` at cycle `n` is readable (in the output's red
    /// species) during cycle `n + 1`.
    pub fn output(&mut self, name: &str, source: Node) {
        self.net.output(name, source);
    }

    /// Number of expression nodes (diagnostic).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.net.node_count()
    }

    /// Lowers the circuit to a complete reaction network. See
    /// [`compile_netlist`] for the errors.
    ///
    /// # Errors
    ///
    /// See [`compile_netlist`].
    pub fn compile(self) -> Result<CompiledSystem, SyncError> {
        compile_netlist(self.net, self.clock)
    }
}

/// Which combinational stage a node's value settles in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Green,
    Blue,
}

/// Where a node's value is needed.
#[derive(Debug, Default, Clone)]
struct Uses {
    /// Fast-op consumers in the green stage (copy count).
    green_ops: usize,
    /// Fast-op consumers in the blue stage (copy count).
    blue_ops: usize,
    /// Commit destinations (register red species), served by one transfer.
    commits: Vec<SpeciesId>,
}

struct Compiler {
    clock: ClockSpec,
    nodes: Vec<NodeOp>,
    registers: Vec<Register>,
    inputs: Vec<(String, Node)>,
    outputs: Vec<(String, Node)>,
    builder: SchemeBuilder,
    stage: Vec<Stage>,
    uses: Vec<Uses>,
    /// Green/blue value species per node.
    green_species: Vec<Option<SpeciesId>>,
    blue_species: Vec<Option<SpeciesId>>,
    /// Copies handed out so far, per node and stage.
    green_copies: Vec<Vec<SpeciesId>>,
    blue_copies: Vec<Vec<SpeciesId>>,
    register_reds: Vec<SpeciesId>,
    waste: SpeciesId,
}

impl Compiler {
    fn new(netlist: Netlist, clock: ClockSpec) -> Result<Self, SyncError> {
        let mut builder = SchemeBuilder::new(clock.config);
        let waste = builder.uncolored("waste");
        let (nodes, registers, inputs, outputs) = netlist.into_parts();
        let n = nodes.len();
        Ok(Compiler {
            clock,
            nodes,
            registers,
            inputs,
            outputs,
            builder,
            stage: vec![Stage::Green; n],
            uses: vec![Uses::default(); n],
            green_species: vec![None; n],
            blue_species: vec![None; n],
            green_copies: vec![Vec::new(); n],
            blue_copies: vec![Vec::new(); n],
            register_reds: Vec::new(),
            waste,
        })
    }

    fn run(mut self) -> Result<CompiledSystem, SyncError> {
        self.validate_names()?;
        self.validate_nodes()?;
        self.infer_stages()?;
        self.materialize_outputs();
        self.allocate_registers()?;
        self.count_uses()?;
        self.emit_clock()?;
        self.emit_nodes()?;
        self.emit_register_rotations()?;
        self.finish()
    }

    // ---- validation -----------------------------------------------------

    fn validate_names(&self) -> Result<(), SyncError> {
        let mut seen = HashMap::new();
        let names = self
            .inputs
            .iter()
            .map(|(n, _)| n)
            .chain(self.registers.iter().map(|r| &r.name))
            .chain(self.outputs.iter().map(|(n, _)| n));
        for name in names {
            if seen.insert(name.clone(), ()).is_some() {
                return Err(SyncError::DuplicatePort { name: name.clone() });
            }
        }
        Ok(())
    }

    fn validate_nodes(&self) -> Result<(), SyncError> {
        let n = self.nodes.len();
        let check = |node: Node| -> Result<(), SyncError> {
            if node.index() >= n {
                return Err(SyncError::UnknownNode {
                    index: node.index(),
                });
            }
            Ok(())
        };
        for op in &self.nodes {
            match op {
                NodeOp::Input { .. } | NodeOp::RegisterOut { .. } => {}
                NodeOp::Add { terms } => {
                    for &(t, w) in terms {
                        check(t)?;
                        if w == 0 {
                            // a sum weight is a p/1 scale folded into the
                            // delivering transfer, so zero is as
                            // unsupported as a zero scale numerator
                            return Err(SyncError::UnsupportedScale { p: 0, q: 1 });
                        }
                    }
                }
                NodeOp::Scale { src, p, q } => {
                    check(*src)?;
                    if *p == 0 || *q == 0 || *q > 3 {
                        return Err(SyncError::UnsupportedScale { p: *p, q: *q });
                    }
                }
                NodeOp::Sub {
                    minuend,
                    subtrahend,
                } => {
                    check(*minuend)?;
                    check(*subtrahend)?;
                }
            }
        }
        for (_, node) in &self.outputs {
            check(*node)?;
        }
        for reg in &self.registers {
            if reg.sources.is_empty() {
                return Err(SyncError::UnknownPort {
                    name: format!("{} (unbound feedback register)", reg.name),
                });
            }
            for &src in &reg.sources {
                check(src)?;
            }
        }
        Ok(())
    }

    fn operands(&self, i: usize) -> Vec<usize> {
        match &self.nodes[i] {
            NodeOp::Input { .. } | NodeOp::RegisterOut { .. } => Vec::new(),
            NodeOp::Add { terms } => terms.iter().map(|(t, _)| t.index()).collect(),
            NodeOp::Scale { src, .. } => vec![src.index()],
            NodeOp::Sub {
                minuend,
                subtrahend,
            } => vec![minuend.index(), subtrahend.index()],
        }
    }

    /// Assigns stages: sources are green; an op is green only while its
    /// whole operand cone is green and free of subtraction results; once a
    /// subtraction's value is consumed the consumer moves to blue; blue
    /// subtraction results may feed commits only. Detects combinational
    /// cycles along the way.
    fn infer_stages(&mut self) -> Result<(), SyncError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let n = self.nodes.len();
        let mut marks = vec![Mark::White; n];
        // iterative DFS computing stage
        let mut order: Vec<usize> = Vec::new();
        let mut stack: Vec<(usize, bool)> = (0..n).map(|i| (i, false)).collect();
        while let Some((i, processed)) = stack.pop() {
            if processed {
                marks[i] = Mark::Black;
                order.push(i);
                continue;
            }
            match marks[i] {
                Mark::Black => continue,
                Mark::Grey => return Err(SyncError::CombinationalCycle),
                Mark::White => {}
            }
            marks[i] = Mark::Grey;
            stack.push((i, true));
            for op in self.operands(i) {
                match marks[op] {
                    Mark::White => stack.push((op, false)),
                    Mark::Grey => return Err(SyncError::CombinationalCycle),
                    Mark::Black => {}
                }
            }
        }

        for &i in &order {
            let stage = match &self.nodes[i] {
                NodeOp::Input { .. } | NodeOp::RegisterOut { .. } => Stage::Green,
                _ => {
                    let mut stage = Stage::Green;
                    for op in self.operands(i) {
                        let op_is_sub = matches!(self.nodes[op], NodeOp::Sub { .. });
                        match (self.stage[op], op_is_sub) {
                            (Stage::Green, false) => {}
                            (Stage::Green, true) => stage = Stage::Blue,
                            (Stage::Blue, false) => stage = Stage::Blue,
                            (Stage::Blue, true) => {
                                // consuming a blue subtraction result in
                                // fast logic: no settling barrier remains
                                return Err(SyncError::CombinationalCycle);
                            }
                        }
                    }
                    stage
                }
            };
            self.stage[i] = stage;
        }
        Ok(())
    }

    /// Turns output ports into discard registers.
    fn materialize_outputs(&mut self) {
        for (name, source) in &self.outputs {
            let reg = self.registers.len();
            self.nodes.push(NodeOp::RegisterOut { reg });
            let out = Node::from_index(self.nodes.len() - 1);
            self.registers.push(Register {
                name: name.clone(),
                sources: vec![*source],
                init: 0.0,
                out,
            });
            self.stage.push(Stage::Green);
            self.uses.push(Uses::default());
            self.green_species.push(None);
            self.blue_species.push(None);
            self.green_copies.push(Vec::new());
            self.blue_copies.push(Vec::new());
        }
    }

    fn allocate_registers(&mut self) -> Result<(), SyncError> {
        for reg in &self.registers {
            if !(reg.init.is_finite() && reg.init >= 0.0) {
                return Err(SyncError::InvalidAmount { value: reg.init });
            }
            let red = self
                .builder
                .signal(&format!("{}.R", reg.name), Color::Red)?;
            self.register_reds.push(red);
            self.builder.set_initial(red, reg.init)?;
        }
        Ok(())
    }

    /// Counts, for every node, how many same-stage fast ops consume it and
    /// which register reds it commits to.
    fn count_uses(&mut self) -> Result<(), SyncError> {
        for i in 0..self.nodes.len() {
            for op in self.operands(i) {
                match self.stage[i] {
                    Stage::Green => self.uses[op].green_ops += 1,
                    // a green operand of a blue op is consumed *after*
                    // crossing, i.e. as a blue copy
                    Stage::Blue => self.uses[op].blue_ops += 1,
                }
            }
        }
        for (r, reg) in self.registers.iter().enumerate() {
            for &src in &reg.sources {
                let red = self.register_reds[r];
                self.uses[src.index()].commits.push(red);
            }
        }
        // Subtraction results must not feed same-stage fast logic. Green
        // subs are safe by stage inference; blue subs may only commit.
        for (i, op) in self.nodes.iter().enumerate() {
            if matches!(op, NodeOp::Sub { .. })
                && self.stage[i] == Stage::Blue
                && self.uses[i].blue_ops > 0
            {
                return Err(SyncError::CombinationalCycle);
            }
        }
        Ok(())
    }

    // ---- emission -------------------------------------------------------

    fn emit_clock(&mut self) -> Result<(), SyncError> {
        let token = self.clock.token;
        if !(token.is_finite() && token > 0.0) {
            return Err(SyncError::InvalidAmount { value: token });
        }
        let r = self.builder.signal("clk.R", Color::Red)?;
        let g = self.builder.signal("clk.G", Color::Green)?;
        let b = self.builder.signal("clk.B", Color::Blue)?;
        self.builder.transfer(r, &[(g, 1)], "clk R->G")?;
        self.builder.transfer(g, &[(b, 1)], "clk G->B")?;
        self.builder.transfer(b, &[(r, 1)], "clk B->R")?;
        self.builder.set_initial(r, token)?;
        // The clock phases drive every same-phase datapath transfer (the
        // paper's cross-coupled feedback): the token is large, so its
        // dimers ignite each phase crisply and carry signals of any size —
        // small quantities cannot ignite feedback of their own.
        self.builder.set_phase_driver(Color::Red, r);
        self.builder.set_phase_driver(Color::Green, g);
        self.builder.set_phase_driver(Color::Blue, b);
        Ok(())
    }

    fn node_name(&self, i: usize) -> String {
        match &self.nodes[i] {
            NodeOp::Input { name } => format!("in.{name}"),
            NodeOp::RegisterOut { reg } => format!("{}.out", self.registers[*reg].name),
            NodeOp::Add { .. } => format!("n{i}.sum"),
            NodeOp::Scale { .. } => format!("n{i}.scl"),
            NodeOp::Sub { .. } => format!("n{i}.dif"),
        }
    }

    /// The species holding node `i`'s settled value in its own stage.
    fn value_species(&mut self, i: usize) -> Result<SpeciesId, SyncError> {
        match self.stage[i] {
            Stage::Green => self.green_value(i),
            Stage::Blue => self.blue_value(i),
        }
    }

    fn green_value(&mut self, i: usize) -> Result<SpeciesId, SyncError> {
        if let Some(s) = self.green_species[i] {
            return Ok(s);
        }
        let name = format!("{}.g", self.node_name(i));
        let s = self.builder.signal(&name, Color::Green)?;
        self.green_species[i] = Some(s);
        Ok(s)
    }

    fn blue_value(&mut self, i: usize) -> Result<SpeciesId, SyncError> {
        if let Some(s) = self.blue_species[i] {
            return Ok(s);
        }
        let name = format!("{}.b", self.node_name(i));
        let s = self.builder.signal(&name, Color::Blue)?;
        self.blue_species[i] = Some(s);
        Ok(s)
    }

    /// A per-consumer copy species of node `i` in `stage`.
    fn copy_species(&mut self, i: usize, stage: Stage) -> Result<SpeciesId, SyncError> {
        let (color, list_len) = match stage {
            Stage::Green => (Color::Green, self.green_copies[i].len()),
            Stage::Blue => (Color::Blue, self.blue_copies[i].len()),
        };
        let name = format!(
            "{}.{}cp{}",
            self.node_name(i),
            if color == Color::Green { "g" } else { "b" },
            list_len
        );
        let s = self.builder.signal(&name, color)?;
        match stage {
            Stage::Green => self.green_copies[i].push(s),
            Stage::Blue => self.blue_copies[i].push(s),
        }
        Ok(s)
    }

    fn emit_nodes(&mut self) -> Result<(), SyncError> {
        for i in 0..self.nodes.len() {
            self.emit_node_value(i)?;
        }
        for i in 0..self.nodes.len() {
            self.emit_node_distribution(i)?;
        }
        Ok(())
    }

    /// Emits the reactions *producing* node `i`'s value from its operands'
    /// copies.
    fn emit_node_value(&mut self, i: usize) -> Result<(), SyncError> {
        let stage = self.stage[i];
        match self.nodes[i].clone() {
            // Inputs are injected into their green species; register reads
            // are produced by the register rotation (emitted separately).
            NodeOp::Input { .. } | NodeOp::RegisterOut { .. } => Ok(()),
            NodeOp::Add { terms } => {
                let value = self.value_species(i)?;
                for (t, w) in terms {
                    let copy = self.copy_species(t.index(), stage)?;
                    // weight folds into the delivery: one copy molecule
                    // yields w result molecules
                    self.builder
                        .fast(&[(copy, 1)], &[(value, w)], &format!("add into n{i}"))?;
                }
                Ok(())
            }
            NodeOp::Scale { src, p, q } => {
                let value = self.value_species(i)?;
                let copy = self.copy_species(src.index(), stage)?;
                self.builder.fast(
                    &[(copy, q)],
                    &[(value, p)],
                    &format!("scale {p}/{q} into n{i}"),
                )?;
                if q > 1 {
                    // parity leak: at integer counts a lone leftover
                    // molecule cannot pair; without this drain it would
                    // block its category's absence indicator forever and
                    // deadlock the rotation. In the continuous limit the
                    // leak only collects the vanishing tail.
                    self.builder
                        .gated_drain(copy, self.waste, &format!("scale parity n{i}"))?;
                }
                Ok(())
            }
            NodeOp::Sub {
                minuend,
                subtrahend,
            } => {
                let value = self.value_species(i)?;
                let m = self.copy_species(minuend.index(), stage)?;
                let s = self.copy_species(subtrahend.index(), stage)?;
                self.builder
                    .fast(&[(m, 1)], &[(value, 1)], &format!("sub move n{i}"))?;
                self.builder
                    .fast(&[(s, 1), (value, 1)], &[], &format!("sub eat n{i}"))?;
                // the unconsumed part of the subtrahend drains to waste in
                // the following transfer phase
                self.builder
                    .gated_drain(s, self.waste, &format!("sub residue n{i}"))?;
                Ok(())
            }
        }
    }

    /// Emits the reactions *distributing* node `i`'s settled value: same-
    /// stage fan-out to copies, the green→blue crossing, and the commit
    /// transfer.
    fn emit_node_distribution(&mut self, i: usize) -> Result<(), SyncError> {
        let stage = self.stage[i];
        let uses = self.uses[i].clone();

        // How the value leaves its own stage.
        match stage {
            Stage::Green => {
                let needs_blue = uses.blue_ops > 0 || !uses.commits.is_empty();
                let green_consumers = uses.green_ops + usize::from(needs_blue);
                let value = self.green_value(i)?;

                if green_consumers == 0 {
                    // dangling: drain to waste so green always empties
                    self.builder
                        .gated_drain(value, self.waste, &format!("drain n{i}"))?;
                    return Ok(());
                }

                // Hand the already-created copies (made by consumers during
                // emit_node_value) their quantity via one fan-out reaction,
                // or feed the single consumer directly.
                let mut products: Vec<(SpeciesId, u32)> = self.green_copies[i]
                    .clone()
                    .into_iter()
                    .map(|c| (c, 1))
                    .collect();
                if needs_blue {
                    let blue = self.blue_value(i)?;
                    // the clock's blue phase drives the crossing, so no
                    // destination-side feedback proxy is needed
                    if products.is_empty() {
                        // sole consumer: transfer the value itself
                        self.builder
                            .transfer(value, &[(blue, 1)], &format!("cross n{i}"))?;
                    } else {
                        let cross_copy = self.copy_species(i, Stage::Green)?;
                        products.push((cross_copy, 1));
                        self.builder
                            .transfer(cross_copy, &[(blue, 1)], &format!("cross n{i}"))?;
                        self.builder
                            .fast(&[(value, 1)], &products, &format!("fanout n{i}"))?;
                    }
                } else if !products.is_empty() {
                    self.builder
                        .fast(&[(value, 1)], &products, &format!("fanout n{i}"))?;
                }

                // Blue side of a green node (post-crossing): distribute to
                // blue copies and commits.
                if needs_blue {
                    self.distribute_blue(i, &uses)?;
                }
                Ok(())
            }
            Stage::Blue => {
                // green side unused by construction
                self.distribute_blue(i, &uses)
            }
        }
    }

    /// Distributes a node's blue value to blue-op copies and its commit
    /// transfer. For blue-stage subtractions the value must not fan out
    /// (it is still settling); `count_uses` guarantees only commits remain.
    fn distribute_blue(&mut self, i: usize, uses: &Uses) -> Result<(), SyncError> {
        let blue = self.blue_value(i)?;
        let has_commit = !uses.commits.is_empty();
        let blue_consumers = uses.blue_ops + usize::from(has_commit);

        if blue_consumers == 0 {
            self.builder
                .gated_drain(blue, self.waste, &format!("drain n{i}"))?;
            return Ok(());
        }

        let commit_products: Vec<(SpeciesId, u32)> =
            uses.commits.iter().map(|&red| (red, 1)).collect();

        let mut products: Vec<(SpeciesId, u32)> = self.blue_copies[i]
            .clone()
            .into_iter()
            .map(|c| (c, 1))
            .collect();

        if has_commit && products.is_empty() {
            // sole consumer: the commit transfer moves the value directly
            self.builder
                .transfer(blue, &commit_products, &format!("commit n{i}"))?;
            return Ok(());
        }
        if has_commit {
            let commit_copy = self.copy_species(i, Stage::Blue)?;
            products.push((commit_copy, 1));
            self.builder
                .transfer(commit_copy, &commit_products, &format!("commit n{i}"))?;
        }
        self.builder
            .fast(&[(blue, 1)], &products, &format!("fanout n{i}"))?;
        Ok(())
    }

    /// Emits each register's red→green rotation: the stored value leaves
    /// red and becomes the register's read value (its `RegisterOut` node's
    /// green species).
    fn emit_register_rotations(&mut self) -> Result<(), SyncError> {
        for r in 0..self.registers.len() {
            let red = self.register_reds[r];
            let out_node = self.registers[r].out.index();
            let green = self.green_value(out_node)?;
            let name = self.registers[r].name.clone();
            self.builder
                .transfer(red, &[(green, 1)], &format!("{name} R->G"))?;
        }
        Ok(())
    }

    fn finish(mut self) -> Result<CompiledSystem, SyncError> {
        // Input species map (inputs are injected into their green value).
        let mut input_map = HashMap::new();
        for (name, node) in self.inputs.clone() {
            let s = self.green_value(node.index())?;
            input_map.insert(name, s);
        }

        let clock = ClockHandles {
            red: self.builder.signal("clk.R", Color::Red)?,
            green: self.builder.signal("clk.G", Color::Green)?,
            blue: self.builder.signal("clk.B", Color::Blue)?,
            token: self.clock.token,
        };

        let mut registers = HashMap::new();
        for (r, reg) in self.registers.iter().enumerate() {
            registers.insert(
                reg.name.clone(),
                RegisterHandles {
                    red: self.register_reds[r],
                    init: reg.init,
                },
            );
        }
        let outputs: Vec<String> = self.outputs.iter().map(|(n, _)| n.clone()).collect();

        debug_assert!(
            self.builder.stall_risks().is_empty(),
            "compiler left trapped colored species: {:?}",
            self.builder.stall_risks()
        );

        let (crn, initial) = self.builder.finish()?;
        Ok(CompiledSystem::new(
            crn, initial, clock, input_map, registers, outputs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_compiles() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        let d = c.delay("d", x);
        let sum = c.add(&[x, d]);
        let y = c.halve(sum);
        c.output("y", y);
        let sys = c.compile().unwrap();
        assert!(
            sys.crn().validate().is_empty(),
            "{:?}",
            sys.crn().validate()
        );
        assert!(sys.input_species("x").is_ok());
        assert!(sys.output_species("y").is_ok());
    }

    #[test]
    fn duplicate_port_names_are_rejected() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        c.output("x", x);
        assert!(matches!(c.compile(), Err(SyncError::DuplicatePort { .. })));
    }

    #[test]
    fn foreign_node_is_rejected() {
        let mut other = SyncCircuit::new(ClockSpec::default());
        let x = other.input("x");
        let d = other.delay("d", x);
        let big = other.add(&[x, d]);

        let mut c = SyncCircuit::new(ClockSpec::default());
        let _ = c.input("x");
        c.output("y", big); // node index out of range for c
        assert!(matches!(c.compile(), Err(SyncError::UnknownNode { .. })));
    }

    #[test]
    fn bad_scale_is_rejected() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        let s = c.scale(x, 1, 4);
        c.output("y", s);
        assert!(matches!(
            c.compile(),
            Err(SyncError::UnsupportedScale { p: 1, q: 4 })
        ));
    }

    #[test]
    fn zero_sum_weight_is_rejected() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        let d = c.delay("d", x);
        let s = c.add_weighted(&[(x, 1), (d, 0)]);
        c.output("y", s);
        assert!(matches!(
            c.compile(),
            Err(SyncError::UnsupportedScale { p: 0, q: 1 })
        ));
    }

    #[test]
    fn combinational_cycle_is_detected() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        // a = add(x, a) — self-referential without a register
        // construct by hand: first create a placeholder add, then mutate?
        // The public API cannot express a cycle directly (nodes are
        // created before use), so the check guards internal composition:
        // a sub-of-sub-of-sub chain exceeds the two stages instead.
        let s1 = c.sub(x, x);
        let s2 = c.sub(s1, x);
        let s3 = c.sub(s2, x);
        c.output("y", s3);
        assert!(matches!(c.compile(), Err(SyncError::CombinationalCycle)));
    }

    #[test]
    fn two_sub_levels_fit() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        let k = c.constant("k", 10.0);
        let s1 = c.sub(x, k); // green
        let s2 = c.sub(s1, k); // blue
        c.output("y", s2);
        assert!(c.compile().is_ok());
    }

    #[test]
    fn blue_sub_feeding_logic_is_rejected() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        let k = c.constant("k", 10.0);
        let s1 = c.sub(x, k); // green
        let s2 = c.sub(s1, k); // blue
        let d = c.double(s2); // fast consumer of a blue sub: no barrier left
        c.output("y", d);
        assert!(matches!(c.compile(), Err(SyncError::CombinationalCycle)));
    }

    #[test]
    fn constants_feed_themselves() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let k = c.constant("k", 42.0);
        let y = c.double(k);
        c.output("y", y);
        let sys = c.compile().unwrap();
        let k_red = sys.register_species("k").unwrap();
        let init = sys.initial_state();
        assert_eq!(init.get(k_red), 42.0);
    }

    #[test]
    fn invalid_register_init_is_rejected() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        let d = c.delay_with_init("d", x, -5.0);
        c.output("y", d);
        assert!(matches!(c.compile(), Err(SyncError::InvalidAmount { .. })));
    }

    #[test]
    fn multi_source_registers_compile() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        let y = c.input("y");
        let acc = c.feedback_delay("acc");
        // acc' = x + y via two separate commit sources
        c.rebind_register("acc", x).unwrap();
        c.add_register_source("acc", y).unwrap();
        c.output("out", acc);
        assert!(c.compile().is_ok());
    }

    #[test]
    fn unbound_feedback_register_is_rejected() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let f = c.feedback_delay("loop");
        c.output("y", f);
        assert!(matches!(c.compile(), Err(SyncError::UnknownPort { .. })));
    }

    #[test]
    fn rebind_unknown_register_fails() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        assert!(c.rebind_register("nope", x).is_err());
        assert!(c.add_register_source("nope", x).is_err());
    }

    #[test]
    fn feedback_delay_with_init_carries_the_value() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let f = c.feedback_delay_with_init("hold", 42.0);
        c.rebind_register("hold", f).unwrap(); // self-loop: holds forever
        c.output("y", f);
        let sys = c.compile().unwrap();
        let red = sys.register_species("hold").unwrap();
        assert_eq!(sys.initial_state().get(red), 42.0);
    }

    #[test]
    fn node_count_tracks_dag_size() {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        let d = c.delay("d", x);
        let _ = c.add(&[x, d]);
        assert_eq!(c.node_count(), 3);
    }

    #[test]
    fn netlist_source_compiles_end_to_end() {
        let src = "\
module avg {
  input x
  wire t0 = 1/2 * x
  reg z1
  z1 <= x
  wire t1 = 1/2 * z1
  output y = t0 + t1
}
";
        let sys = compile_netlist_source(src, ClockSpec::default()).unwrap();
        assert!(sys.input_species("x").is_ok());
        assert!(sys.output_species("y").is_ok());
        assert!(sys.crn().validate().is_empty());
    }

    #[test]
    fn netlist_source_errors_carry_positions() {
        let err = compile_netlist_source("module m {\n  wire y = nope\n}\n", ClockSpec::default())
            .unwrap_err();
        match err {
            NetlistSourceError::Parse(p) => assert_eq!((p.line, p.col), (2, 12)),
            other => panic!("expected a parse error, got {other:?}"),
        }
        // structurally bad but textually fine: lowering rejects it
        let err = compile_netlist_source(
            "module m {\n  input x\n  wire y = 1/4 * x\n  output z = y\n}\n",
            ClockSpec::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            NetlistSourceError::Compile(SyncError::UnsupportedScale { p: 1, q: 4 })
        ));
    }

    #[test]
    fn facade_and_netlist_compile_identically() {
        // the same averager, once through the façade and once as text:
        // identical CRN reaction-for-reaction, species-for-species
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        let t0 = c.halve(x);
        let d = c.delay("z1", x);
        let t1 = c.halve(d);
        let y = c.add(&[t0, t1]);
        c.output("y", y);
        let by_facade = c.compile().unwrap();

        let src = "\
module avg {
  input x
  wire t0 = 1/2 * x
  reg z1
  z1 <= x
  wire t1 = 1/2 * z1
  output y = t0 + t1
}
";
        let by_text = compile_netlist_source(src, ClockSpec::default()).unwrap();
        assert_eq!(
            by_facade.crn().to_string(),
            by_text.crn().to_string(),
            "one lowering path must produce one CRN"
        );
        assert_eq!(
            by_facade.crn().structural_hash(),
            by_text.crn().structural_hash()
        );
    }
}
