//! The two primitive constructs: a free-running chemical clock and a chain
//! of delay elements.

use crate::{Color, SchemeBuilder, SchemeConfig, SyncError};
use molseq_crn::{Crn, SpeciesId};
use molseq_kinetics::State;

/// A free-running chemical clock: one closed delay ring `R → G → B → R`
/// carrying a fixed token quantity. Its three species' concentrations are
/// the non-overlapping phase signals — a high concentration is a logical 1,
/// a low concentration a logical 0 (experiment E1).
///
/// # Examples
///
/// See the [crate-level example](crate) for a full simulation.
#[derive(Debug, Clone)]
pub struct Clock {
    crn: Crn,
    red: SpeciesId,
    green: SpeciesId,
    blue: SpeciesId,
    token: f64,
}

impl Clock {
    /// Builds a standalone clock with the given scheme configuration and
    /// token quantity.
    ///
    /// # Errors
    ///
    /// [`SyncError::InvalidAmount`] if `token` is not finite and positive.
    pub fn build(config: SchemeConfig, token: f64) -> Result<Self, SyncError> {
        if !(token.is_finite() && token > 0.0) {
            return Err(SyncError::InvalidAmount { value: token });
        }
        let mut b = SchemeBuilder::new(config);
        let red = b.signal("clk.R", Color::Red)?;
        let green = b.signal("clk.G", Color::Green)?;
        let blue = b.signal("clk.B", Color::Blue)?;
        b.transfer(red, &[(green, 1)], "clk R->G")?;
        b.transfer(green, &[(blue, 1)], "clk G->B")?;
        b.transfer(blue, &[(red, 1)], "clk B->R")?;
        b.set_initial(red, token)?;
        debug_assert!(b.stall_risks().is_empty());
        let (crn, _) = b.finish()?;
        Ok(Clock {
            crn,
            red,
            green,
            blue,
            token,
        })
    }

    /// The generated network.
    #[must_use]
    pub fn crn(&self) -> &Crn {
        &self.crn
    }

    /// The red phase species.
    #[must_use]
    pub fn red(&self) -> SpeciesId {
        self.red
    }

    /// The green phase species.
    #[must_use]
    pub fn green(&self) -> SpeciesId {
        self.green
    }

    /// The blue phase species.
    #[must_use]
    pub fn blue(&self) -> SpeciesId {
        self.blue
    }

    /// The circulating token quantity.
    #[must_use]
    pub fn token(&self) -> f64 {
        self.token
    }

    /// The initial state: the whole token in the red phase.
    #[must_use]
    pub fn initial_state(&self) -> State {
        let mut s = State::new(&self.crn);
        s.set(self.red, self.token);
        s
    }
}

/// A chain of `n` delay elements — the companion abstract's Figure 1.
///
/// The external input `X` is the blue species `B0`; element `i` owns the
/// triple `Ri/Gi/Bi`. One full phase rotation moves every stored quantity
/// one hop, so the value placed in `X` appears at the output after `n + 1`
/// blue→red phases.
///
/// The output `Y` is an **uncolored accumulator** rather than the
/// abstract's red type `R(n+1)`: a terminal species inside the red
/// category would absorb the red-absence indicator forever once the first
/// value arrives, freezing the green→blue phase and deadlocking every
/// later wavefront. The terminal hop is an indicator-gated fast drain
/// (see [`SchemeBuilder::gated_drain`](crate::SchemeBuilder::gated_drain)),
/// so `Y` accumulates each arrival exactly, in order, while the chain
/// keeps rotating.
///
/// # Examples
///
/// ```
/// use molseq_sync::{DelayChain, SchemeConfig};
/// use molseq_kinetics::{CompiledCrn, OdeOptions, SimSpec, Simulation};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use molseq_sync::stored_final_value;
///
/// let chain = DelayChain::build(SchemeConfig::default(), 2)?;
/// let init = chain.initial_state(80.0, &[0.0, 0.0])?;
/// let compiled = CompiledCrn::new(chain.crn(), &SimSpec::default());
/// let trace = Simulation::new(chain.crn(), &compiled)
///     .init(&init)
///     .options(OdeOptions::default().with_t_end(60.0))
///     .run()?;
/// let y = stored_final_value(chain.crn(), &trace, chain.output());
/// assert!((y - 80.0).abs() < 1.0, "X arrived at Y: {y}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DelayChain {
    crn: Crn,
    input: SpeciesId,
    elements: Vec<[SpeciesId; 3]>,
    output: SpeciesId,
}

impl DelayChain {
    /// Builds a chain of `n ≥ 1` delay elements.
    ///
    /// # Errors
    ///
    /// [`SyncError::InvalidAmount`] if `n` is zero (a chain needs at least
    /// one element).
    pub fn build(config: SchemeConfig, n: usize) -> Result<Self, SyncError> {
        if n == 0 {
            return Err(SyncError::InvalidAmount { value: 0.0 });
        }
        let mut b = SchemeBuilder::new(config);
        let input = b.signal("B0", Color::Blue)?;
        let mut elements = Vec::with_capacity(n);
        for i in 1..=n {
            let r = b.signal(&format!("R{i}"), Color::Red)?;
            let g = b.signal(&format!("G{i}"), Color::Green)?;
            let blue = b.signal(&format!("B{i}"), Color::Blue)?;
            elements.push([r, g, blue]);
        }
        let output = b.uncolored("Y");

        // B0 feeds R1 in the blue→red phase; each element rotates; the last
        // blue feeds the output red.
        b.transfer(input, &[(elements[0][0], 1)], "input B0->R1")?;
        for i in 0..n {
            let [r, g, blue] = elements[i];
            b.transfer(r, &[(g, 1)], &format!("D{} R->G", i + 1))?;
            b.transfer(g, &[(blue, 1)], &format!("D{} G->B", i + 1))?;
            if i + 1 < n {
                b.transfer(
                    blue,
                    &[(elements[i + 1][0], 1)],
                    &format!("D{} B->R", i + 1),
                )?;
            } else {
                // the terminal hop leaves the color system
                b.gated_drain(blue, output, &format!("D{} B->Y", i + 1))?;
            }
        }
        // The output accumulates outside the color system; the chain can
        // carry any number of staged wavefronts through to it.
        let (crn, _) = b.finish()?;
        Ok(DelayChain {
            crn,
            input,
            elements,
            output,
        })
    }

    /// The generated network.
    #[must_use]
    pub fn crn(&self) -> &Crn {
        &self.crn
    }

    /// The input species `B0`.
    #[must_use]
    pub fn input(&self) -> SpeciesId {
        self.input
    }

    /// The `[R, G, B]` triple of element `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn element(&self, i: usize) -> [SpeciesId; 3] {
        self.elements[i]
    }

    /// Number of delay elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the chain has no elements (never the case for a built chain).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The uncolored output accumulator `Y`.
    #[must_use]
    pub fn output(&self) -> SpeciesId {
        self.output
    }

    /// Builds an initial state: `x` in the input `B0` and
    /// `element_values[i]` in element `i`'s **blue** species.
    ///
    /// Stored quantities rest in blue at the instant a new input is
    /// accepted — the input joins the pending blue→red commit, so every
    /// element (and the input) advances one hop in the same phase without
    /// merging. Starting element values in red instead would let the input
    /// commit into a still-occupied `R1`.
    ///
    /// # Errors
    ///
    /// [`SyncError::InvalidAmount`] if any amount is negative or not
    /// finite, or if `element_values` is longer than the chain.
    pub fn initial_state(&self, x: f64, element_values: &[f64]) -> Result<State, SyncError> {
        if element_values.len() > self.elements.len() {
            return Err(SyncError::InvalidAmount {
                value: element_values.len() as f64,
            });
        }
        let mut s = State::new(&self.crn);
        for &v in element_values.iter().chain(std::iter::once(&x)) {
            if !(v.is_finite() && v >= 0.0) {
                return Err(SyncError::InvalidAmount { value: v });
            }
        }
        s.set(self.input, x);
        for (i, &v) in element_values.iter().enumerate() {
            s.set(self.elements[i][2], v);
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use molseq_kinetics::{estimate_period, CompiledCrn, OdeOptions, SimSpec, Simulation};

    fn ode(crn: &Crn, init: &State, t_end: f64) -> molseq_kinetics::Trace {
        let compiled = CompiledCrn::new(crn, &SimSpec::default());
        Simulation::new(crn, &compiled)
            .init(init)
            .options(
                OdeOptions::default()
                    .with_t_end(t_end)
                    .with_record_interval(0.05),
            )
            .run()
            .unwrap()
    }

    #[test]
    fn clock_oscillates_with_nonoverlapping_phases() {
        let clock = Clock::build(SchemeConfig::default(), 100.0).unwrap();
        let trace = ode(clock.crn(), &clock.initial_state(), 150.0);
        let half = 50.0;
        for phase in [clock.red(), clock.green(), clock.blue()] {
            let series = trace.series(phase);
            let period = estimate_period(trace.times(), &series, half);
            assert!(period.is_some(), "phase must oscillate");
        }
        // Non-overlap: at no sample are two phases simultaneously above 60%.
        for i in 0..trace.len() {
            let s = trace.state(i);
            let high = [clock.red(), clock.green(), clock.blue()]
                .iter()
                .filter(|&&p| s[p.index()] > 60.0)
                .count();
            assert!(high <= 1, "phases overlap at sample {i}");
        }
        // The token is exactly conserved across R+G+B plus twice the
        // sharpener dimers (each I[...] holds two token units).
        let dimer_ids: Vec<_> = clock
            .crn()
            .species_iter()
            .filter(|(_, sp)| sp.name().starts_with("I["))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(dimer_ids.len(), 3);
        for i in 0..trace.len() {
            let s = trace.state(i);
            let mut total =
                s[clock.red().index()] + s[clock.green().index()] + s[clock.blue().index()];
            for &d in &dimer_ids {
                total += 2.0 * s[d.index()];
            }
            assert!(
                (total - 100.0).abs() < 0.5,
                "token total {total} at sample {i}"
            );
        }
    }

    #[test]
    fn clock_rejects_bad_token() {
        assert!(Clock::build(SchemeConfig::default(), 0.0).is_err());
        assert!(Clock::build(SchemeConfig::default(), f64::NAN).is_err());
    }

    #[test]
    fn delay_chain_moves_x_to_y() {
        let chain = DelayChain::build(SchemeConfig::default(), 2).unwrap();
        let init = chain.initial_state(80.0, &[0.0, 0.0]).unwrap();
        let trace = ode(chain.crn(), &init, 80.0);
        // the terminal red output holds part of its quantity in the
        // sharpener dimer; read the full stored value
        let y = crate::stored_final_value(chain.crn(), &trace, chain.output());
        assert!((y - 80.0).abs() < 1.0, "got {y}");
        // input fully drained
        assert!(trace.final_state()[chain.input().index()] < 0.5);
    }

    #[test]
    fn delay_chain_transfers_are_ordered() {
        // With values in both X and the elements, the wavefront stays
        // ordered: element 2 receives element 1's value, not X's.
        let chain = DelayChain::build(SchemeConfig::default(), 2).unwrap();
        let init = chain.initial_state(80.0, &[30.0, 55.0]).unwrap();
        let trace = ode(chain.crn(), &init, 120.0);
        // After enough time: Y accumulated 55 + 30 + 80 = 165 (everything
        // flows through), but the *order* matters: Y first reaches ≈55,
        // then ≈85, then ≈165, one full rotation apart.
        let y = chain.output();
        let fin = crate::stored_final_value(chain.crn(), &trace, y);
        assert!((fin - 165.0).abs() < 2.0, "final {fin}");
        let first_above = |level: f64| {
            molseq_kinetics::crossings(trace.times(), &trace.series(y), level)
                .first()
                .map(|c| c.time)
                .unwrap_or(f64::INFINITY)
        };
        let (t55, t85, t165) = (first_above(50.0), first_above(80.0), first_above(160.0));
        assert!(
            t55 + 0.5 < t85 && t85 + 0.5 < t165,
            "arrivals must be ordered, one rotation apart: {t55} {t85} {t165}"
        );
    }

    #[test]
    fn delay_chain_validates_inputs() {
        assert!(DelayChain::build(SchemeConfig::default(), 0).is_err());
        let chain = DelayChain::build(SchemeConfig::default(), 1).unwrap();
        assert!(chain.initial_state(-1.0, &[]).is_err());
        assert!(chain.initial_state(1.0, &[1.0, 2.0]).is_err());
        assert_eq!(chain.len(), 1);
        assert!(!chain.is_empty());
    }

    #[test]
    fn sharpeners_are_load_bearing() {
        // With feedback, a transfer completes crisply. Without it, each
        // phase leaves a tail; tails end up occupying all three categories
        // at once, every indicator is suppressed, and the system settles
        // into an equilibrium crawl — the transfer effectively never
        // completes. The ablation shows the feedback is structural, not an
        // optimization.
        let quantity = 30.0;
        let completion = |config: SchemeConfig| {
            let chain = DelayChain::build(config, 1).unwrap();
            let init = chain.initial_state(quantity, &[0.0]).unwrap();
            let trace = ode(chain.crn(), &init, 600.0);
            let y = chain.output();
            crate::stored_final_value(chain.crn(), &trace, y) / quantity
        };
        let with = completion(SchemeConfig::default());
        let without = completion(SchemeConfig {
            sharpeners: false,
            full_coupling: false,
        });
        assert!(with > 0.98, "sharpened chain completes: {with}");
        assert!(
            without < 0.5,
            "unsharpened chain gridlocks into a crawl: {without}"
        );
    }
}
