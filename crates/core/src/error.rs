//! Errors for the synchronous framework.

use molseq_crn::CrnError;
use std::error::Error;
use std::fmt;

/// Errors produced while building or compiling synchronous constructs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SyncError {
    /// A species name was registered twice with conflicting colors.
    ColorConflict {
        /// The species name.
        name: String,
    },
    /// A transfer was declared from a species that is not colored.
    UncoloredSource {
        /// The species name.
        name: String,
    },
    /// A circuit node id did not belong to the circuit it was used with.
    UnknownNode {
        /// The raw node index.
        index: usize,
    },
    /// A named port (input/output/register) was not found.
    UnknownPort {
        /// The name looked up.
        name: String,
    },
    /// A port name was declared twice.
    DuplicatePort {
        /// The conflicting name.
        name: String,
    },
    /// A scale factor was out of the supported range.
    UnsupportedScale {
        /// Numerator.
        p: u32,
        /// Denominator.
        q: u32,
    },
    /// A quantity (token, constant, initial value) was invalid.
    InvalidAmount {
        /// The offending value.
        value: f64,
    },
    /// The circuit contains a combinational cycle (a loop not broken by a
    /// delay element).
    CombinationalCycle,
    /// The harness could not observe the requested number of clock cycles
    /// within its (extended) time horizon.
    InsufficientCycles {
        /// How many cycles were requested.
        requested: usize,
        /// How many completed within the horizon.
        found: usize,
    },
    /// An error from the kinetics simulator.
    Simulation(molseq_kinetics::SimError),
    /// An error from the underlying network layer.
    Network(CrnError),
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::ColorConflict { name } => {
                write!(
                    f,
                    "species `{name}` was registered with two different colors"
                )
            }
            SyncError::UncoloredSource { name } => {
                write!(f, "transfer source `{name}` has no color category")
            }
            SyncError::UnknownNode { index } => {
                write!(f, "node index {index} does not belong to this circuit")
            }
            SyncError::UnknownPort { name } => write!(f, "no port named `{name}`"),
            SyncError::DuplicatePort { name } => {
                write!(f, "port name `{name}` is already in use")
            }
            SyncError::UnsupportedScale { p, q } => write!(
                f,
                "scale factor {p}/{q} is unsupported (q must be 1..=3 and p >= 1)"
            ),
            SyncError::InvalidAmount { value } => {
                write!(f, "amount {value} must be finite and non-negative")
            }
            SyncError::CombinationalCycle => f.write_str(
                "the circuit contains a combinational cycle; break it with a delay element",
            ),
            SyncError::InsufficientCycles { requested, found } => write!(
                f,
                "only {found} of {requested} clock cycles completed within the time horizon"
            ),
            SyncError::Simulation(e) => write!(f, "simulation error: {e}"),
            SyncError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl Error for SyncError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SyncError::Network(e) => Some(e),
            SyncError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<molseq_kinetics::SimError> for SyncError {
    fn from(e: molseq_kinetics::SimError) -> Self {
        SyncError::Simulation(e)
    }
}

impl From<CrnError> for SyncError {
    fn from(e: CrnError) -> Self {
        SyncError::Network(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let cases: Vec<SyncError> = vec![
            SyncError::ColorConflict { name: "X".into() },
            SyncError::UncoloredSource { name: "w".into() },
            SyncError::UnknownNode { index: 4 },
            SyncError::UnknownPort { name: "Y".into() },
            SyncError::DuplicatePort { name: "X".into() },
            SyncError::UnsupportedScale { p: 1, q: 9 },
            SyncError::InvalidAmount { value: -2.0 },
            SyncError::CombinationalCycle,
            SyncError::Network(CrnError::EmptyReaction),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn network_errors_have_a_source() {
        let e = SyncError::from(CrnError::EmptyReaction);
        assert!(std::error::Error::source(&e).is_some());
    }
}
