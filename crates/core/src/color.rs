//! The three color categories.

use std::fmt;

/// The color category of a signal species.
///
/// Every signal type in the synchronous scheme belongs to one category; a
/// clock cycle is one full rotation red → green → blue → red.
///
/// # Examples
///
/// ```
/// use molseq_sync::Color;
///
/// assert_eq!(Color::Red.next(), Color::Green);
/// assert_eq!(Color::Red.prev(), Color::Blue);
/// assert_eq!(Color::Red.next().next().next(), Color::Red);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Color {
    /// The category registers rest in at the start of each cycle.
    Red,
    /// The first transfer destination.
    Green,
    /// The category in which inputs are injected and combinational logic
    /// settles, just before commit.
    Blue,
}

impl Color {
    /// All three colors, in rotation order.
    pub const ALL: [Color; 3] = [Color::Red, Color::Green, Color::Blue];

    /// The category a signal moves *to* during this category's transfer
    /// phase.
    #[must_use]
    pub fn next(self) -> Color {
        match self {
            Color::Red => Color::Green,
            Color::Green => Color::Blue,
            Color::Blue => Color::Red,
        }
    }

    /// The category before this one in rotation order. A transfer out of
    /// color `c` is gated on the absence indicator of `c.prev()`: the
    /// previous phase must have drained completely.
    #[must_use]
    pub fn prev(self) -> Color {
        match self {
            Color::Red => Color::Blue,
            Color::Green => Color::Red,
            Color::Blue => Color::Green,
        }
    }

    /// The conventional lowercase name of this color's absence indicator.
    #[must_use]
    pub fn indicator_name(self) -> &'static str {
        match self {
            Color::Red => "r",
            Color::Green => "g",
            Color::Blue => "b",
        }
    }

    /// A short uppercase tag used when naming generated species.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Color::Red => "R",
            Color::Green => "G",
            Color::Blue => "B",
        }
    }

    /// Index into [`Color::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Color::Red => 0,
            Color::Green => 1,
            Color::Blue => 2,
        }
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Color::Red => "red",
            Color::Green => "green",
            Color::Blue => "blue",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_is_a_three_cycle() {
        for c in Color::ALL {
            assert_eq!(c.next().prev(), c);
            assert_eq!(c.prev().next(), c);
            assert_eq!(c.next().next().next(), c);
        }
    }

    #[test]
    fn names_are_consistent() {
        assert_eq!(Color::Red.indicator_name(), "r");
        assert_eq!(Color::Green.tag(), "G");
        assert_eq!(Color::Blue.to_string(), "blue");
        assert_eq!(Color::ALL[Color::Green.index()], Color::Green);
    }
}
