//! The compiled synchronous system: network + bookkeeping.

use crate::SyncError;
use molseq_crn::{Crn, CrnStats, SpeciesId};
use molseq_kinetics::{Condition, State, Trigger};
use std::collections::HashMap;

/// Species handles of the embedded clock ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockHandles {
    /// Red phase species.
    pub red: SpeciesId,
    /// Green phase species.
    pub green: SpeciesId,
    /// Blue phase species.
    pub blue: SpeciesId,
    /// Circulating token quantity.
    pub token: f64,
}

/// Species handles of one register.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegisterHandles {
    /// The red species holding the register value at cycle start.
    pub red: SpeciesId,
    /// The configured initial value.
    pub init: f64,
}

/// A fully lowered synchronous circuit: the reaction network plus the
/// handles needed to drive it (inject inputs per cycle, find cycle
/// boundaries, read registers).
///
/// Produced by [`SyncCircuit::compile`](crate::SyncCircuit::compile);
/// driven by [`drive_cycles`](crate::drive_cycles) or manually.
#[derive(Debug, Clone)]
pub struct CompiledSystem {
    crn: Crn,
    initial: Vec<(SpeciesId, f64)>,
    clock: ClockHandles,
    inputs: HashMap<String, SpeciesId>,
    registers: HashMap<String, RegisterHandles>,
    outputs: Vec<String>,
}

impl CompiledSystem {
    pub(crate) fn new(
        crn: Crn,
        initial: Vec<(SpeciesId, f64)>,
        clock: ClockHandles,
        inputs: HashMap<String, SpeciesId>,
        registers: HashMap<String, RegisterHandles>,
        outputs: Vec<String>,
    ) -> Self {
        CompiledSystem {
            crn,
            initial,
            clock,
            inputs,
            registers,
            outputs,
        }
    }

    /// The generated reaction network.
    #[must_use]
    pub fn crn(&self) -> &Crn {
        &self.crn
    }

    /// Network size statistics (the construct-cost table of experiment E5).
    #[must_use]
    pub fn stats(&self) -> CrnStats {
        CrnStats::of(&self.crn)
    }

    /// The clock species handles.
    #[must_use]
    pub fn clock(&self) -> ClockHandles {
        self.clock
    }

    /// The initial state: register initial values in their red species and
    /// the clock token in `clk.R`.
    #[must_use]
    pub fn initial_state(&self) -> State {
        let mut s = State::new(&self.crn);
        for &(species, amount) in &self.initial {
            s.set(species, amount);
        }
        s
    }

    /// The injection species of an input port.
    ///
    /// # Errors
    ///
    /// [`SyncError::UnknownPort`] if no such input exists.
    pub fn input_species(&self, name: &str) -> Result<SpeciesId, SyncError> {
        self.inputs
            .get(name)
            .copied()
            .ok_or_else(|| SyncError::UnknownPort { name: name.into() })
    }

    /// The readable (red) species of an output port.
    ///
    /// # Errors
    ///
    /// [`SyncError::UnknownPort`] if no such output exists.
    pub fn output_species(&self, name: &str) -> Result<SpeciesId, SyncError> {
        if !self.outputs.iter().any(|o| o == name) {
            return Err(SyncError::UnknownPort { name: name.into() });
        }
        self.register_species(name)
    }

    /// The readable (red) species of any register (including outputs and
    /// constants).
    ///
    /// # Errors
    ///
    /// [`SyncError::UnknownPort`] if no such register exists.
    pub fn register_species(&self, name: &str) -> Result<SpeciesId, SyncError> {
        self.registers
            .get(name)
            .map(|h| h.red)
            .ok_or_else(|| SyncError::UnknownPort { name: name.into() })
    }

    /// Names of all registers (including constants and output registers).
    pub fn register_names(&self) -> impl Iterator<Item = &str> {
        self.registers.keys().map(String::as_str)
    }

    /// Names of the declared output ports.
    #[must_use]
    pub fn output_names(&self) -> &[String] {
        &self.outputs
    }

    /// Names of the declared input ports.
    pub fn input_names(&self) -> impl Iterator<Item = &str> {
        self.inputs.keys().map(String::as_str)
    }

    /// Adds `amount` of input `name` directly to a state — used to place a
    /// sample before starting the simulation (cycle-0 input).
    ///
    /// # Errors
    ///
    /// [`SyncError::UnknownPort`] if no such input exists;
    /// [`SyncError::InvalidAmount`] for a bad amount.
    pub fn inject_input(
        &self,
        state: &mut State,
        name: &str,
        amount: f64,
    ) -> Result<(), SyncError> {
        if !(amount.is_finite() && amount >= 0.0) {
            return Err(SyncError::InvalidAmount { value: amount });
        }
        let species = self.input_species(name)?;
        state.add(species, amount);
        Ok(())
    }

    /// Builds the per-cycle injection trigger for an input port: each time
    /// the clock's green phase rises (the safe injection window, while the
    /// blue→red commit is blocked), the next queued sample is added.
    ///
    /// # Errors
    ///
    /// [`SyncError::UnknownPort`] if no such input exists.
    pub fn input_trigger(&self, name: &str, samples: &[f64]) -> Result<Trigger, SyncError> {
        let species = self.input_species(name)?;
        // hysteresis: re-arm only once the green phase has clearly ended,
        // so integer-count flicker around the firing threshold (under
        // stochastic dynamics) cannot double-inject
        Ok(
            Trigger::inject_queue(self.injection_window(), species, samples.to_vec()).with_rearm(
                Condition::Below {
                    species: self.clock.green,
                    threshold: 0.2 * self.clock.token,
                },
            ),
        )
    }

    /// The condition marking the safe injection window (clock green phase
    /// high).
    #[must_use]
    pub fn injection_window(&self) -> Condition {
        Condition::Above {
            species: self.clock.green,
            threshold: 0.5 * self.clock.token,
        }
    }

    /// A trigger that marks the end of every clock cycle (the clock token
    /// returning to red). The threshold is 0.8 of the token: the free red
    /// strand peaks ~8% below the token, the rest riding the sharpener
    /// dimer.
    #[must_use]
    pub fn cycle_marker(&self) -> Trigger {
        Trigger::mark(Condition::Above {
            species: self.clock.red,
            threshold: 0.8 * self.clock.token,
        })
        .with_rearm(Condition::Below {
            species: self.clock.red,
            threshold: 0.2 * self.clock.token,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{ClockSpec, SyncCircuit};

    fn tiny() -> crate::CompiledSystem {
        let mut c = SyncCircuit::new(ClockSpec::default());
        let x = c.input("x");
        let d = c.delay("d", x);
        c.output("y", d);
        c.compile().unwrap()
    }

    #[test]
    fn port_lookup_works() {
        let sys = tiny();
        assert!(sys.input_species("x").is_ok());
        assert!(sys.input_species("nope").is_err());
        assert!(sys.output_species("y").is_ok());
        assert!(
            sys.output_species("d").is_err(),
            "d is a register, not an output"
        );
        assert!(sys.register_species("d").is_ok());
        assert_eq!(sys.output_names(), &["y".to_owned()]);
        assert_eq!(sys.input_names().count(), 1);
        assert!(sys.register_names().count() >= 2);
    }

    #[test]
    fn initial_state_has_clock_token() {
        let sys = tiny();
        let init = sys.initial_state();
        assert_eq!(init.get(sys.clock().red), sys.clock().token);
    }

    #[test]
    fn inject_input_validates() {
        let sys = tiny();
        let mut state = sys.initial_state();
        assert!(sys.inject_input(&mut state, "x", 10.0).is_ok());
        assert!(sys.inject_input(&mut state, "x", -1.0).is_err());
        assert!(sys.inject_input(&mut state, "zz", 1.0).is_err());
        let x = sys.input_species("x").unwrap();
        assert_eq!(state.get(x), 10.0);
    }

    #[test]
    fn triggers_reference_clock_species() {
        let sys = tiny();
        let trigger = sys.input_trigger("x", &[1.0, 2.0]).unwrap();
        // the trigger watches the clock's green phase
        match trigger.condition {
            molseq_kinetics::Condition::Above { species, threshold } => {
                assert_eq!(species, sys.clock().green);
                assert_eq!(threshold, 50.0);
            }
            _ => panic!("unexpected condition"),
        }
        let marker = sys.cycle_marker();
        match marker.condition {
            molseq_kinetics::Condition::Above { species, .. } => {
                assert_eq!(species, sys.clock().red);
            }
            _ => panic!("unexpected condition"),
        }
    }

    #[test]
    fn stats_reflect_network_size() {
        let sys = tiny();
        let stats = sys.stats();
        assert!(stats.species > 5);
        assert!(stats.reactions > 10);
        assert!(stats.slow >= 3, "indicator sources are slow");
    }
}
