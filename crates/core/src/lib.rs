//! # molseq-sync — synchronous sequential computation with molecular reactions
//!
//! The paper's contribution, as a library. Sequential (state-holding)
//! computation is built from chemical reactions using three ideas:
//!
//! 1. **Color categories.** Every signal type is red, green or blue
//!    ([`Color`]). Computation proceeds as a global three-phase rotation:
//!    red→green, green→blue, blue→red.
//! 2. **Absence indicators.** Three types `r`, `g`, `b` are generated at a
//!    slow zero-order rate and consumed fast by any species of the matching
//!    color, so each accumulates only when its entire color category is
//!    empty. Each phase transfer is *gated* on the indicator of the third
//!    color, so no phase can begin until the previous phase has completed
//!    everywhere. The indicators are global: they are the clock.
//! 3. **Positive feedback.** Once a transfer begins, fast autocatalytic
//!    reactions accelerate it, making phase edges crisp.
//!
//! A **delay element** (the D flip-flop of this technology) is a triple of
//!    types `R/G/B` whose stored quantity makes one full rotation per clock
//!    cycle. Combinational arithmetic — fan-out, weighted sums, clamped
//!    subtraction — is folded into the rotation as fast same-color
//!    reactions, so filters, counters and general FSM datapaths become a
//!    matter of wiring.
//!
//! The layers of this crate:
//!
//! * [`SchemeBuilder`] — the reaction-level generator (equations (1)–(6) of
//!   the companion abstract): colored species, gated transfers, sharpeners,
//!   indicators.
//! * [`Clock`] / [`DelayChain`] — the two primitive constructs the papers
//!   plot first: a free-running chemical clock and a chain of delay
//!   elements.
//! * [`SyncCircuit`] → [`CompiledSystem`] — a register-transfer-level
//!   builder: declare inputs, registers, an expression DAG (add, scale,
//!   subtract, constants) and outputs; `compile` emits the full CRN plus
//!   the bookkeeping needed to inject inputs per cycle and read registers
//!   per cycle.
//! * [`BinaryCounter`] — the paper's finite-state example, built on
//!   [`SyncCircuit`].
//! * [`drive_cycles`] / [`SyncRun`] — simulation harness: drives a
//!   compiled system for N clock cycles under a [`RunConfig`]-selected
//!   kinetic interpretation (ODE or exact stochastic), locates cycle
//!   boundaries from the clock waveform and samples every register once
//!   per cycle.
//!
//! ## Example: a free-running chemical clock
//!
//! ```
//! use molseq_sync::{Clock, SchemeConfig};
//! use molseq_kinetics::{estimate_period, CompiledCrn, OdeOptions, SimSpec, Simulation};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let clock = Clock::build(SchemeConfig::default(), 100.0)?;
//! let compiled = CompiledCrn::new(clock.crn(), &SimSpec::default());
//! let trace = Simulation::new(clock.crn(), &compiled)
//!     .init(&clock.initial_state())
//!     .options(OdeOptions::default().with_t_end(120.0))
//!     .run()?;
//! let series = trace.series(clock.red());
//! let period = estimate_period(trace.times(), &series, 50.0);
//! assert!(period.is_some(), "the clock oscillates");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod clock;
mod color;
mod counter;
mod error;
mod fsm;
mod measure;
mod programs;
mod runner;
mod scheme;
mod system;

pub use circuit::{
    compile_netlist, compile_netlist_source, Netlist, NetlistSourceError, Node, SyncCircuit,
};
pub use clock::{Clock, DelayChain};
pub use color::Color;
pub use counter::BinaryCounter;
pub use error::SyncError;
pub use fsm::Fsm;
pub use measure::{stored_final_value, stored_value_at, stored_value_terms};
pub use programs::{IterativeLog2, IterativeMultiplier};
pub use runner::{drive_cycles, drive_cycles_batch, BatchCell, CycleResources, RunConfig, SyncRun};
pub use scheme::{ClockSpec, SchemeBuilder, SchemeConfig};
pub use system::{ClockHandles, CompiledSystem, RegisterHandles};
