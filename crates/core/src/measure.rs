//! Reading stored quantities from traces.
//!
//! While a colored species `T` holds quantity, a fraction sits in its
//! sharpener dimer `I[T]` (two units each) in fast equilibrium —
//! `(k_slow/k_fast)·T²`, about 8% at an amplitude of 100 with the default
//! rates. The dimer is part of the stored quantity (it re-releases as `T`
//! drains), so faithful readout sums `T + 2·I[T]`.

use molseq_crn::{Crn, SpeciesId};
use molseq_kinetics::Trace;

/// The weighted terms whose sum reads the full stored quantity of
/// `species`: the species itself, plus twice its sharpener dimer when one
/// exists in the network.
///
/// # Examples
///
/// ```
/// use molseq_sync::{stored_value_terms, Clock, SchemeConfig};
///
/// # fn main() -> Result<(), molseq_sync::SyncError> {
/// let clock = Clock::build(SchemeConfig::default(), 100.0)?;
/// let terms = stored_value_terms(clock.crn(), clock.red());
/// assert_eq!(terms.len(), 2); // clk.R and I[clk.R]
/// assert_eq!(terms[0].1, 1.0);
/// assert_eq!(terms[1].1, 2.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn stored_value_terms(crn: &Crn, species: SpeciesId) -> Vec<(SpeciesId, f64)> {
    let mut terms = vec![(species, 1.0)];
    let dimer_name = format!("I[{}]", crn.species_name(species));
    if let Some(dimer) = crn.find_species(&dimer_name) {
        terms.push((dimer, 2.0));
    }
    terms
}

/// Reads the full stored quantity of `species` at time `t` of a trace
/// (linear interpolation), including the sharpener-dimer share.
///
/// # Panics
///
/// Panics if the trace is empty.
#[must_use]
pub fn stored_value_at(crn: &Crn, trace: &Trace, species: SpeciesId, t: f64) -> f64 {
    stored_value_terms(crn, species)
        .into_iter()
        .map(|(s, w)| w * trace.value_at(s, t))
        .sum()
}

/// The full stored quantity at the final sample of a trace.
///
/// # Panics
///
/// Panics if the trace is empty.
#[must_use]
pub fn stored_final_value(crn: &Crn, trace: &Trace, species: SpeciesId) -> f64 {
    let state = trace.final_state();
    stored_value_terms(crn, species)
        .into_iter()
        .map(|(s, w)| w * state[s.index()])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Color, SchemeBuilder, SchemeConfig};

    #[test]
    fn uncolored_destinations_have_no_dimer_term() {
        let mut b = SchemeBuilder::new(SchemeConfig::default());
        let r = b.signal("R", Color::Red).unwrap();
        let w = b.uncolored("waste");
        // sharpeners only attach to colored destinations; an uncolored
        // sink keeps no dimer share
        b.transfer(r, &[(w, 1)], "drain").unwrap();
        let (crn, _) = b.finish().unwrap();
        assert_eq!(stored_value_terms(&crn, w).len(), 1);
        // R is never a transfer destination here, so no dimer either
        assert_eq!(stored_value_terms(&crn, r).len(), 1);
    }

    #[test]
    fn colored_destination_gets_dimer_term() {
        let mut b = SchemeBuilder::new(SchemeConfig::default());
        let r = b.signal("R", Color::Red).unwrap();
        let g = b.signal("G", Color::Green).unwrap();
        let w = b.uncolored("waste");
        b.transfer(r, &[(g, 1)], "R->G").unwrap();
        b.transfer(g, &[(w, 1)], "drain").unwrap();
        let (crn, _) = b.finish().unwrap();
        let terms = stored_value_terms(&crn, g);
        assert_eq!(terms.len(), 2);
        assert_eq!(crn.species_name(terms[1].0), "I[G]");
    }
}
