//! Simulator-engine benchmarks: integrator and stochastic-method
//! throughput on representative networks, plus the compiled-kernel costs
//! (derivative, Jacobian) as the network grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use molseq_crn::Crn;
use molseq_kinetics::{
    CompiledCrn, OdeMethod, OdeOptions, SimMethod, SimSpec, Simulation, SsaOptions, State,
};
use molseq_sync::{Clock, DelayChain, SchemeConfig};

/// A delay chain of `n` elements with a staged wavefront — the scaling
/// workload.
fn chain_workload(n: usize) -> (Crn, State) {
    let chain = DelayChain::build(SchemeConfig::default(), n).expect("builds");
    let init = chain.initial_state(80.0, &vec![0.0; n]).expect("state");
    (chain.crn().clone(), init)
}

fn bench_integrators(c: &mut Criterion) {
    let mut group = c.benchmark_group("integrators");
    group.sample_size(10);
    let clock = Clock::build(SchemeConfig::default(), 100.0).expect("builds");
    let init = clock.initial_state();
    let compiled = CompiledCrn::new(clock.crn(), &SimSpec::default());

    for (name, method) in [
        (
            "rosenbrock",
            OdeMethod::Rosenbrock {
                rtol: 1e-6,
                atol: 1e-9,
            },
        ),
        (
            "cash_karp",
            OdeMethod::CashKarp {
                rtol: 1e-6,
                atol: 1e-9,
            },
        ),
    ] {
        group.bench_function(format!("clock_20tu_{name}"), |b| {
            b.iter(|| {
                Simulation::new(clock.crn(), &compiled)
                    .init(&init)
                    .options(OdeOptions::default().with_t_end(20.0).with_method(method))
                    .run()
                    .expect("simulates")
            });
        });
    }
    group.finish();
}

fn bench_stochastic(c: &mut Criterion) {
    let mut group = c.benchmark_group("stochastic");
    group.sample_size(10);
    let (crn, init) = chain_workload(2);
    let compiled = CompiledCrn::new(&crn, &SimSpec::default());
    let opts = SsaOptions::default().with_t_end(30.0).with_seed(1);

    group.bench_function("direct_chain2_30tu", |b| {
        b.iter(|| {
            Simulation::new(&crn, &compiled)
                .init(&init)
                .options(opts)
                .run()
                .expect("simulates")
        });
    });
    group.bench_function("next_reaction_chain2_30tu", |b| {
        b.iter(|| {
            Simulation::new(&crn, &compiled)
                .init(&init)
                .method(SimMethod::Nrm)
                .options(opts)
                .run()
                .expect("simulates")
        });
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    for n in [1usize, 4, 8] {
        let (crn, init) = chain_workload(n);
        let compiled = CompiledCrn::new(&crn, &SimSpec::default());
        let x = init.as_slice().to_vec();
        let species = compiled.species_count();
        let mut dx = vec![0.0; species];
        group.bench_with_input(BenchmarkId::new("derivative", species), &n, |b, _| {
            b.iter(|| compiled.derivative(&x, &mut dx));
        });
        let mut jac = vec![0.0; species * species];
        group.bench_with_input(BenchmarkId::new("jacobian", species), &n, |b, _| {
            b.iter(|| compiled.jacobian(&x, &mut jac));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_integrators, bench_stochastic, bench_kernels);
criterion_main!(benches);
