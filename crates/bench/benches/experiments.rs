//! Criterion harness: prints each experiment's report once (so
//! `cargo bench` output contains the reproduced figures and tables), then
//! times the experiment's reduced-workload kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use molseq_bench::{all_experiments, ExpCtx};

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);

    let full = ExpCtx::full();
    let quick = ExpCtx::quick();
    for (id, title, runner) in all_experiments() {
        // one full-workload run, printed: the reproduction artifact
        println!("\n{}", runner(&full));
        // timed: the reduced workload
        group.bench_function(format!("{id}_{}", title.replace(' ', "_")), |b| {
            b.iter(|| std::hint::black_box(runner(&quick)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
