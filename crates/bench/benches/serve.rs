//! Criterion harness: batch-server round-trip throughput.
//!
//! Boots an in-process `molseq-serve` instance once per arm and times a
//! full client round trip — submit a stochastic replicate sweep over
//! TCP, stream every row back — under two regimes:
//!
//! * `cold_cache` — every iteration submits a *fresh* network (a longer
//!   decay chain each time), so each round trip pays one compile;
//! * `warm_cache` — every iteration resubmits the same network, so the
//!   compiled-CRN cache serves all iterations after the first.
//!
//! The gap between the arms is the compile amortization the cache buys;
//! the `warm_cache` arm is the steady-state serving cost (wire + queue +
//! simulate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use molseq_serve::{CellSpec, Client, Method, Program, Server, ServerConfig, SubmitRequest};

const REPS: usize = 8;

/// A decay chain `X0 -> X1 -> … -> Xn` as reaction text; `salt` varies
/// the chain length so every cold-cache iteration is a new structure.
fn chain_network(stages: usize) -> String {
    (0..stages)
        .map(|i| format!("X{i} -> X{} @slow\n", i + 1))
        .collect()
}

fn submit(network: String) -> SubmitRequest {
    SubmitRequest {
        tenant: "bench".to_owned(),
        program: Program::Crn(network),
        init: vec![("X0".to_owned(), 64.0)],
        method: Method::Ssa,
        t_end: 1.0e4,
        record_interval: None,
        seed: 17,
        injections: vec![],
        batch: Some(1),
        cells: (0..REPS)
            .map(|i| CellSpec {
                label: format!("rep={i}"),
                k_fast: None,
                k_slow: None,
            })
            .collect(),
    }
}

fn roundtrip(client: &mut Client, request: &SubmitRequest) -> usize {
    let ack = client.submit(request).expect("submission is valid");
    let rows = client.fetch_all(&ack.job_id).expect("job completes");
    assert_eq!(rows.len(), REPS);
    rows.iter().map(|r| r.final_state.len()).sum()
}

fn bench_serve(c: &mut Criterion) {
    let server = Server::start(ServerConfig::default()).expect("server boots");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    let warm = submit(chain_network(6));
    group.bench_with_input(
        BenchmarkId::new("roundtrip", "warm_cache"),
        &warm,
        |b, req| {
            b.iter(|| std::hint::black_box(roundtrip(&mut client, req)));
        },
    );

    let mut stages = 8;
    group.bench_function("roundtrip/cold_cache", |b| {
        b.iter(|| {
            // a new chain length every iteration: never a cache hit
            stages += 1;
            std::hint::black_box(roundtrip(&mut client, &submit(chain_network(stages))))
        });
    });
    group.finish();

    client.shutdown().expect("shutdown round trip");
    server.join();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
