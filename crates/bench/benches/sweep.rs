//! Criterion harness: serial vs parallel sweep wall time.
//!
//! The workload is the E11 cell shape — the combinational average
//! `y = (a + b)/2` compiled to a leaky DSD network and integrated to a
//! short horizon. Thirty-two such cells (a leak-rate grid) run on the
//! [`molseq_sweep`] engine with one worker (serial baseline) and with one
//! worker per hardware thread; results are identical in job order, only
//! the wall time moves. On a single-core host the two arms coincide —
//! the speedup is `min(cores, cells)`-shaped.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use molseq_crn::{Crn, RateAssignment};
use molseq_dsd::{DsdParams, DsdSystem};
use molseq_kinetics::{CompiledCrn, OdeOptions, SimSpec, Simulation};
use molseq_modules::{add, halve};
use molseq_sweep::{run_sweep, JobError, SweepJob, SweepOptions};

const CELLS: usize = 32;

/// Builds the abstract average program and its expected output.
fn average_program() -> (Crn, [f64; 4], f64) {
    let mut crn = Crn::new();
    let a = crn.species("a");
    let b = crn.species("b");
    let s = crn.species("s");
    let y = crn.species("y");
    add(&mut crn, &[a, b], s).expect("add");
    halve(&mut crn, s, y).expect("halve");
    let init = [30.0, 14.0, 0.0, 0.0];
    let expected = (init[0] + init[1]) / 2.0;
    (crn, init, expected)
}

/// One cell: compile the program to DSD at `leak`, integrate, return the
/// output error.
fn error_at_leak(leak: f64) -> Result<f64, JobError> {
    let (formal, init, expected) = average_program();
    let y = formal.find_species("y").expect("exists");
    let params = DsdParams {
        leak,
        ..DsdParams::default()
    };
    let dsd = DsdSystem::compile(&formal, RateAssignment::default(), &params)
        .map_err(JobError::failed)?;
    let compiled = CompiledCrn::new(dsd.crn(), &SimSpec::default());
    let trace = Simulation::new(dsd.crn(), &compiled)
        .init(&dsd.initial_state(&init))
        .options(
            OdeOptions::default()
                .with_t_end(30.0)
                .with_record_interval(1.0),
        )
        .run()
        .map_err(JobError::failed)?;
    let fin = trace.final_state();
    let measured: f64 = dsd.apparent(y).iter().map(|s| fin[s.index()]).sum();
    Ok((measured - expected).abs())
}

/// Runs the leak grid on `workers` threads; returns per-cell errors in
/// job order (worker-agnostic).
fn leak_sweep(workers: usize) -> Vec<f64> {
    let jobs: Vec<SweepJob<'_, f64>> = (0..CELLS)
        .map(|i| {
            let leak = 1e-12 * (i + 1) as f64;
            SweepJob::new(format!("leak={leak:e}"), move |_job| error_at_leak(leak))
        })
        .collect();
    let out = run_sweep(&jobs, &SweepOptions::default().with_workers(workers));
    out.cells
        .iter()
        .map(|c| *c.value().expect("cell simulates"))
        .collect()
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    // workers = 1 is the serial baseline; 0 sizes from the machine
    for (name, workers) in [("serial", 1usize), ("parallel", 0usize)] {
        group.bench_with_input(BenchmarkId::new("leak_cells", name), &workers, |b, &w| {
            b.iter(|| std::hint::black_box(leak_sweep(w)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
