//! Kinetics hot-path benchmarks: the headline workloads tracked in
//! `BENCH_kinetics.json`.
//!
//! Three workloads, chosen to exercise the deterministic kernel the way
//! the experiments do:
//!
//! * `clock_40tu` — the E1 chemical clock integrated for 40 time units
//!   (small network, long stiff limit cycle; dominated by step count);
//! * `counter_cycles/<bits>` — a multi-bit binary counter driven through
//!   a full pulse train by the cycle harness (the largest networks in the
//!   workspace; dominated by Jacobian/LU cost per step);
//! * `sweep_grid_32` — a 32-cell rate-ratio grid of the 2-tap
//!   moving-average filter on the sweep engine (the E6/PR-1 shape: many
//!   medium cells, compile-once/rebind-per-cell);
//! * `ssa_replicates_8` — an 8-replicate Gillespie run of the same
//!   filter (the E10 shape: one compiled network, many seeds), scalar
//!   vs the lock-step batched SSA engine.
//!
//! Run with `cargo bench -p molseq-bench --bench kinetics`. Record the
//! printed per-iteration means in `BENCH_kinetics.json` when the kernel
//! changes, so the perf trajectory stays visible across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use molseq_bench::{filter_grid_units, ssa_replicate_units, FilterGridCell};
use molseq_crn::RateAssignment;
use molseq_dsp::moving_average;
use molseq_kinetics::{
    CompiledCrn, MetricsSink, OdeOptions, Replicator, Schedule, SimSpec, Simulation, SsaOptions,
    StepHook,
};
use molseq_sweep::{run_sweep, run_units, JobError, SweepJob, SweepOptions};
use molseq_sync::{
    drive_cycles, BinaryCounter, Clock, ClockSpec, CycleResources, RunConfig, SchemeConfig,
};

fn bench_clock(c: &mut Criterion) {
    let mut group = c.benchmark_group("kinetics");
    group.sample_size(10);
    let clock = Clock::build(SchemeConfig::default(), 100.0).expect("clock builds");
    let init = clock.initial_state();
    let compiled = CompiledCrn::new(clock.crn(), &SimSpec::default());
    group.bench_function("clock_40tu", |b| {
        b.iter(|| {
            Simulation::new(clock.crn(), &compiled)
                .init(&init)
                .options(OdeOptions::default().with_t_end(40.0))
                .run()
                .expect("clock simulates")
        });
    });
    group.finish();
}

fn bench_counter(c: &mut Criterion) {
    let mut group = c.benchmark_group("kinetics");
    group.sample_size(10);
    for bits in [2usize, 3, 4] {
        let counter =
            BinaryCounter::build(bits, 60.0, ClockSpec::default()).expect("counter builds");
        let pulses = vec![true, true, true, true, true, false];
        let samples = counter.pulse_train(&pulses);
        let cycles = samples.len() + 1;
        let species = counter.system().stats().species;
        group.bench_with_input(
            BenchmarkId::new("counter_cycles", format!("{bits}bits_{species}sp")),
            &bits,
            |b, _| {
                b.iter(|| {
                    drive_cycles(
                        counter.system(),
                        &[("pulse", &samples)],
                        cycles,
                        &RunConfig::default(),
                        CycleResources::default(),
                    )
                    .expect("counter runs")
                });
            },
        );
    }
    group.finish();
}

fn bench_sweep_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("kinetics");
    group.sample_size(10);
    let filter = moving_average(2, ClockSpec::default()).expect("filter builds");
    let base = CompiledCrn::new(filter.system().crn(), &SimSpec::default());
    let samples = [10.0, 50.0, 80.0];
    // 32 ratios spanning the robust regime, log-spaced 10^2..10^5
    let ratios: Vec<f64> = (0..32)
        .map(|i| 10f64.powf(2.0 + 3.0 * i as f64 / 31.0))
        .collect();
    group.bench_function("sweep_grid_32", |b| {
        b.iter(|| {
            let jobs: Vec<SweepJob<'_, f64>> = ratios
                .iter()
                .map(|&ratio| {
                    let (filter, base, samples) = (&filter, &base, &samples[..]);
                    SweepJob::new(format!("ratio={ratio:.1}"), move |_job| {
                        let spec = SimSpec::new(RateAssignment::from_ratio(ratio));
                        let measured = filter
                            .respond_with(samples, &RunConfig::default(), Some(&base.rebind(&spec)))
                            .map_err(JobError::failed)?;
                        Ok(measured.iter().sum())
                    })
                })
                .collect();
            let out = run_sweep(&jobs, &SweepOptions::default());
            assert_eq!(out.summary.succeeded, ratios.len());
            out
        });
    });
    // the same 32-cell grid through the lock-step batched path: 16 lanes
    // share one symbolic analysis and advance together, so the speedup
    // over `sweep_grid_32` is the headline number for the batched engine
    // (16 is the sweet spot on this grid — wider batches spill the
    // n²·width W block out of cache)
    let specs: Vec<FilterGridCell> = ratios
        .iter()
        .map(|&ratio| {
            (
                format!("ratio={ratio:.1}"),
                SimSpec::new(RateAssignment::from_ratio(ratio)),
                12.0,
            )
        })
        .collect();
    group.bench_function("sweep_grid_32_batched", |b| {
        b.iter(|| {
            let units =
                filter_grid_units(&filter, &base, &samples, &specs, 16, |_job, measured| {
                    Ok(measured.iter().sum::<f64>())
                });
            let out = run_units(&units, &SweepOptions::default().with_batch_width(16));
            assert_eq!(out.summary.succeeded, ratios.len());
            out
        });
    });
    group.finish();
}

/// Per-replicate SSA options for the stochastic arms: a mid-length
/// horizon on the 2-tap filter keeps one iteration in the seconds range
/// while still being event-dominated.
fn replicate_opts<'h>(seed: u64, hook: StepHook<'h>, sink: MetricsSink<'h>) -> SsaOptions<'h> {
    SsaOptions::default()
        .with_t_end(120.0)
        .with_record_interval(1.0)
        .with_seed(seed)
        .with_step_hook(hook)
        .with_metrics(sink)
}

fn bench_ssa_replicates(c: &mut Criterion) {
    let mut group = c.benchmark_group("kinetics");
    group.sample_size(10);
    let filter = moving_average(2, ClockSpec::default()).expect("filter builds");
    let crn = filter.system().crn();
    let compiled = CompiledCrn::new(crn, &SimSpec::default());
    let init = filter.system().initial_state();
    let samples: Vec<f64> = [1.0f64, 3.0, 2.0, 5.0, 4.0, 1.0]
        .iter()
        .map(|&k| (k / 5.0 * 10.0).round())
        .collect();
    let trigger = filter
        .system()
        .input_trigger("x", &samples)
        .expect("trigger builds");
    let schedule = Schedule::new().trigger(trigger);
    let rep = Replicator::new(&compiled, 101);
    // scalar vs lock-step lanes over identical seeds: the reports are
    // bit-identical, so the wall-clock ratio is the whole story
    for (name, width) in [
        ("ssa_replicates_8", 1usize),
        ("ssa_replicates_8_batched", 8),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let units = ssa_replicate_units(
                    crn,
                    rep,
                    &init,
                    &schedule,
                    replicate_opts,
                    "rep",
                    8,
                    width,
                    |_job, result| {
                        result
                            .map_err(JobError::failed)
                            .map(|t| t.final_state().iter().sum::<f64>())
                    },
                );
                let out = run_units(&units, &SweepOptions::default().with_batch_width(width));
                assert_eq!(out.summary.succeeded, 8);
                out
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_clock,
    bench_counter,
    bench_sweep_grid,
    bench_ssa_replicates
);
criterion_main!(benches);
