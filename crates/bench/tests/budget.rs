//! Integration tests for the cooperative per-cell budget path: a tight
//! step budget must cut sweep cells off *inside* the integration loop
//! (via the kinetics step hooks), surface as `BudgetExceeded` rows in the
//! sweep summary, and never panic or abort the experiment. With a step
//! (not wall) budget the outcome is deterministic, so reports stay
//! byte-identical across worker counts even when cells are interrupted.

use molseq_bench::{all_experiments, ExpCtx};
use molseq_sweep::JobBudget;

fn tight_ctx(jobs: usize) -> ExpCtx {
    // ~200 integrator steps is far below what any E6 cell needs: every
    // cell must hit the budget mid-integration.
    ExpCtx::quick()
        .with_jobs(jobs)
        .with_budget(JobBudget::unlimited().with_max_steps(200))
}

fn run_e6(ctx: &ExpCtx) -> String {
    let (_, _, runner) = all_experiments()
        .into_iter()
        .find(|(id, _, _)| *id == "e6")
        .expect("e6 exists");
    runner(ctx).to_string()
}

#[test]
fn step_budget_interrupts_cells_without_crashing() {
    let report = run_e6(&tight_ctx(2));
    assert!(
        report.contains("interrupted at t ="),
        "budget interruption should surface in the report:\n{report}"
    );
}

#[test]
fn interrupted_reports_are_deterministic_across_worker_counts() {
    let serial = run_e6(&tight_ctx(1));
    let parallel = run_e6(&tight_ctx(4));
    assert_eq!(serial, parallel);
}

#[test]
fn summary_persistence_records_budget_failures() {
    let dir = std::env::temp_dir().join(format!("molseq-budget-summary-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ctx = tight_ctx(2).with_summary_dir(&dir);
    run_e6(&ctx);

    let json = std::fs::read_to_string(dir.join("e6.summary.json")).expect("summary json");
    let csv = std::fs::read_to_string(dir.join("e6.summary.csv")).expect("summary csv");
    assert!(
        json.contains("BudgetExceeded"),
        "summary should classify interrupted cells as budget failures:\n{json}"
    );
    assert!(csv.contains("BudgetExceeded"), "{csv}");
    let _ = std::fs::remove_dir_all(&dir);
}
