//! End-to-end tests for the regression gate: the `trend` binary against
//! the checked-in fixtures, the `repro` flag validation, and the CSV
//! fallback path of the directory loader.

use molseq_sweep::{compare_dirs, read_summary_json, JsonValue, TrendOptions, TrendVerdict};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/trend")
        .join(name)
}

/// A per-test scratch directory under the system temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(test: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("molseq-trend-{test}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn run_trend(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_trend"))
        .args(args)
        .output()
        .expect("run trend binary")
}

fn run_repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("run repro binary")
}

#[test]
fn identical_fixture_dirs_exit_zero() {
    let base = fixture("baseline");
    let out = run_trend(&[base.to_str().unwrap(), base.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("**verdict: UNCHANGED**"), "{stdout}");
}

#[test]
fn injected_step_count_regression_exits_one_and_names_the_metric() {
    let out = run_trend(&[
        fixture("baseline").to_str().unwrap(),
        fixture("regressed").to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("**verdict: REGRESSED**"), "{stdout}");
    // the report must name the counter that moved, with both values
    assert!(
        stdout.contains("| ode_steps_accepted | 1200 | 2400 | regressed |"),
        "{stdout}"
    );
}

#[test]
fn json_report_records_the_verdict() {
    let scratch = Scratch::new("json-report");
    let report = scratch.path("report.json");
    let out = run_trend(&[
        fixture("baseline").to_str().unwrap(),
        fixture("regressed").to_str().unwrap(),
        "--json",
        report.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = fs::read_to_string(&report).expect("report written");
    let doc = JsonValue::parse(&text).expect("report is valid JSON");
    let verdict = doc
        .get("report")
        .and_then(|r| r.get("verdict"))
        .and_then(JsonValue::as_str);
    assert_eq!(verdict, Some("Regressed"), "{text}");
    assert!(doc.get("options").is_some(), "{text}");
}

#[test]
fn widened_tolerance_is_respected_but_counters_still_gate() {
    // wall-clock deltas in the fixtures are large relative to the cells;
    // even an enormous tolerance must not excuse the counter change
    let out = run_trend(&[
        fixture("baseline").to_str().unwrap(),
        fixture("regressed").to_str().unwrap(),
        "--wall-tol",
        "1000",
        "--wall-floor",
        "1000",
    ]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn csv_only_directories_compare_through_the_fallback_reader() {
    let scratch = Scratch::new("csv-fallback");
    let summary =
        read_summary_json(&fs::read_to_string(fixture("baseline/e10.summary.json")).unwrap())
            .expect("fixture parses");
    for side in ["a", "b"] {
        let dir = scratch.path(side);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("e10.summary.csv"), summary.to_csv()).unwrap();
    }
    let trend = compare_dirs(
        &scratch.path("a"),
        &scratch.path("b"),
        &TrendOptions::default(),
    )
    .expect("CSV directories load");
    assert_eq!(trend.experiments.len(), 1);
    assert_eq!(trend.experiments[0].id, "e10");
    assert_eq!(trend.verdict, TrendVerdict::Unchanged);
}

#[test]
fn append_builds_a_trajectory_from_scratch() {
    let scratch = Scratch::new("append");
    let bench = scratch.path("bench.json");
    let out = run_trend(&[
        fixture("baseline").to_str().unwrap(),
        fixture("baseline").to_str().unwrap(),
        "--append",
        bench.to_str().unwrap(),
        "--label",
        "fixture-run",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let doc = JsonValue::parse(&fs::read_to_string(&bench).unwrap()).expect("valid JSON");
    let entries = doc
        .get("trajectory")
        .and_then(JsonValue::as_array)
        .expect("trajectory array");
    assert_eq!(entries.len(), 1);
    let entry = &entries[0];
    assert_eq!(
        entry.get("label").and_then(JsonValue::as_str),
        Some("fixture-run")
    );
    assert_eq!(entry.get("cells").and_then(JsonValue::as_f64), Some(2.0));
    let metrics = entry.get("metrics").expect("metrics object");
    // exact counters summed over both cells; the seed column is skipped
    assert_eq!(
        metrics
            .get("ode_steps_accepted")
            .and_then(JsonValue::as_f64),
        Some(2388.0)
    );
    assert!(metrics.get("seed").is_none());

    // a second append accumulates rather than replaces
    let out = run_trend(&[
        fixture("baseline").to_str().unwrap(),
        fixture("regressed").to_str().unwrap(),
        "--append",
        bench.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "regression still gates with --append"
    );
    let doc = JsonValue::parse(&fs::read_to_string(&bench).unwrap()).unwrap();
    assert_eq!(
        doc.get("trajectory")
            .and_then(JsonValue::as_array)
            .unwrap()
            .len(),
        2
    );
}

#[test]
fn trend_usage_errors_exit_two() {
    assert_eq!(run_trend(&[]).status.code(), Some(2));
    let base = fixture("baseline");
    let base = base.to_str().unwrap();
    assert_eq!(run_trend(&[base]).status.code(), Some(2), "one dir");
    assert_eq!(
        run_trend(&[base, base, "--wall-tol", "-1"]).status.code(),
        Some(2),
        "negative tolerance"
    );
    assert_eq!(
        run_trend(&[base, base, "--wall-floor", "nan"])
            .status
            .code(),
        Some(2),
        "NaN floor"
    );
    assert_eq!(
        run_trend(&[base, "/nonexistent-molseq-trend-dir"])
            .status
            .code(),
        Some(2),
        "missing candidate directory"
    );
}

#[test]
fn repro_rejects_bad_budget_flags_instead_of_panicking() {
    for args in [
        &["e10", "--cell-wall", "-1"][..],
        &["e10", "--cell-wall", "nan"],
        &["e10", "--cell-wall", "inf"],
        &["e10", "--cell-wall", "0"],
        &["e10", "--cell-steps", "0"],
        &["e10", "--trend-against", "somewhere"], // without --summary
    ] {
        let out = run_repro(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!stderr.contains("panicked"), "args {args:?}: {stderr}");
    }
}
