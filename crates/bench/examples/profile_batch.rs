//! Times the sweep_grid_32 workload through the sweep engine at several
//! lock-step batch widths, so the batched-kernel speedup is measurable in
//! isolation (serial pool, no criterion, no co-running load).
//!
//! ```sh
//! cargo run --release -p molseq-bench --example profile_batch
//! ```

use molseq_bench::{filter_grid_units, FilterGridCell};
use molseq_crn::RateAssignment;
use molseq_dsp::moving_average;
use molseq_kinetics::{CompiledCrn, SimSpec};
use molseq_sweep::{run_units, SweepOptions};
use molseq_sync::ClockSpec;
use std::time::Instant;

fn main() {
    let filter = moving_average(2, ClockSpec::default()).expect("filter builds");
    let base = CompiledCrn::new(filter.system().crn(), &SimSpec::default());
    let samples = [10.0, 50.0, 80.0];
    let ratios: Vec<f64> = (0..32)
        .map(|i| 10f64.powf(2.0 + 3.0 * i as f64 / 31.0))
        .collect();
    let specs: Vec<FilterGridCell> = ratios
        .iter()
        .map(|&ratio| {
            (
                format!("ratio={ratio:.1}"),
                SimSpec::new(RateAssignment::from_ratio(ratio)),
                12.0,
            )
        })
        .collect();
    for width in [1usize, 2, 4, 8, 16, 32] {
        let units = filter_grid_units(&filter, &base, &samples, &specs, width, |_job, measured| {
            Ok(measured.iter().sum::<f64>())
        });
        let opts = SweepOptions::default()
            .with_workers(1)
            .with_batch_width(width);
        let start = Instant::now();
        let out = run_units(&units, &opts);
        assert_eq!(out.summary.succeeded, ratios.len());
        println!("width {width:2}: {:?}", start.elapsed());
    }
}
