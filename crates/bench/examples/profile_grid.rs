//! Times the sweep_grid_32 workload cell-by-cell and prints the simulator
//! counters, so kernel work (steps, factorizations) is attributable before
//! and after batching changes.
//!
//! ```sh
//! cargo run --release -p molseq-bench --example profile_grid
//! ```

use molseq_crn::RateAssignment;
use molseq_dsp::moving_average;
use molseq_kinetics::{CompiledCrn, SimMetrics, SimSpec};
use molseq_sync::{ClockSpec, RunConfig};
use std::time::Instant;

fn main() {
    let filter = moving_average(2, ClockSpec::default()).expect("filter builds");
    let base = CompiledCrn::new(filter.system().crn(), &SimSpec::default());
    let samples = [10.0, 50.0, 80.0];
    let ratios: Vec<f64> = (0..32)
        .map(|i| 10f64.powf(2.0 + 3.0 * i as f64 / 31.0))
        .collect();
    println!(
        "species = {}, reactions = {}",
        filter.system().crn().species_count(),
        filter.system().crn().reactions().len()
    );
    let total = Instant::now();
    let mut grand = SimMetrics::default();
    for &ratio in &ratios {
        let spec = SimSpec::new(RateAssignment::from_ratio(ratio));
        let compiled = base.rebind(&spec);
        let sink = std::cell::Cell::new(SimMetrics::default());
        let config = RunConfig {
            metrics: Some(&sink),
            ..RunConfig::default()
        };
        let start = Instant::now();
        let measured = filter
            .respond_with(&samples, &config, Some(&compiled))
            .expect("cell runs");
        let m = sink.get();
        println!(
            "ratio {ratio:9.1}: {:7.1?}  acc {:6} rej {:5} lu {:5} t_end {:7.1}  sum {:.2}",
            start.elapsed(),
            m.ode_steps_accepted,
            m.ode_steps_rejected,
            m.lu_factorizations,
            m.final_time,
            measured.iter().sum::<f64>()
        );
        grand.absorb(&m);
    }
    println!(
        "total {:?}: acc {} rej {} lu {}",
        total.elapsed(),
        grand.ode_steps_accepted,
        grand.ode_steps_rejected,
        grand.lu_factorizations
    );
}
