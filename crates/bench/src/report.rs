//! Experiment report formatting.

use std::fmt;

/// A rendered experiment report: a header plus free-form lines (tables,
/// sparklines, summary numbers).
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (`e1` … `e10`, `a1`, `a2`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Report body lines.
    pub lines: Vec<String>,
    /// Headline scalar results as `(name, value)` — what EXPERIMENTS.md
    /// records.
    pub metrics: Vec<(String, f64)>,
}

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new(id: &'static str, title: &'static str) -> Self {
        Report {
            id,
            title,
            lines: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Appends a body line.
    pub fn line(&mut self, text: impl Into<String>) {
        self.lines.push(text.into());
    }

    /// Records a headline metric (also appended to the body). Values too
    /// small for fixed-point display are rendered in scientific notation.
    pub fn metric(&mut self, name: &str, value: f64) {
        let rendered = if value != 0.0 && value.abs() < 1e-3 {
            format!("{value:.3e}")
        } else {
            format!("{value:.4}")
        };
        self.lines.push(format!("  ≫ {name} = {rendered}"));
        self.metrics.push((name.to_owned(), value));
    }

    /// Looks up a recorded metric.
    #[must_use]
    pub fn metric_value(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== [{}] {} ==", self.id, self.title)?;
        for line in &self.lines {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_and_records() {
        let mut r = Report::new("e0", "smoke");
        r.line("hello");
        r.metric("answer", 42.0);
        assert_eq!(r.metric_value("answer"), Some(42.0));
        assert_eq!(r.metric_value("missing"), None);
        let text = r.to_string();
        assert!(text.contains("[e0] smoke"));
        assert!(text.contains("hello"));
        assert!(text.contains("answer"));
    }
}
