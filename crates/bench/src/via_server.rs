//! The `repro --via-server` smoke path: drives an E10-style stochastic
//! replicate sweep through a running `molseq-serve` instance over the
//! wire, and checks the server's headline guarantees end to end:
//!
//! * the same submission fetched twice is **byte-identical** (so two
//!   servers at different worker counts can be diffed by the caller);
//! * the second submission **hits the compiled-CRN cache**;
//! * a cancelled job drains with every cell `Cancelled`;
//! * optionally, a step-budgeted tenant is cut **deterministically**
//!   (`BudgetExceeded` on every cell) without disturbing the main sweep.
//!
//! With a summary directory, the main sweep's rows and the final server
//! counters are persisted through the same [`SweepSummary`] pipeline the
//! experiments use (`via-server.summary.{json,csv}`,
//! `server-stats.summary.{json,csv}`), so `trend` can gate on them like
//! on any other experiment. Both artifacts are deterministic: rows carry
//! no wall clocks, and every counter the probes touch is
//! scheduling-independent.

use molseq_serve::{
    rows_to_summary, stats_summary, CellRow, CellSpec, Client, Method, Program, SubmitRequest,
};
use molseq_sweep::{JobStatus, SweepSummary};
use std::path::Path;

/// The main sweep under `method`: stochastic decay replicates at a few
/// amplitudes plus one rate-override cell for the rebind path. The decay
/// motif has no reverse pair, so for the hybrid method it is swapped for
/// the clocked production/consumption motif — otherwise the hybrid
/// integrator would delegate wholesale to SSA and the probe would not
/// exercise the continuous subsystem over the wire at all.
///
/// `batch` goes on the wire verbatim: `None` omits the field, letting
/// the server auto-select a lock-step width from the cell count;
/// `Some(w)` pins it. Either way the rows must be byte-identical — the
/// batched engines are bit-equal to their scalar counterparts lane by
/// lane.
fn main_sweep(method: Method, batch: Option<usize>) -> SubmitRequest {
    let mut cells = Vec::new();
    for amplitude in [8, 32] {
        for rep in 0..4 {
            cells.push(CellSpec {
                label: format!("n={amplitude} rep={rep}"),
                k_fast: None,
                k_slow: None,
            });
        }
    }
    cells.push(CellSpec {
        label: "k=500/2".to_owned(),
        k_fast: Some(500.0),
        k_slow: Some(2.0),
    });
    let (network, t_end, record_interval) = match method {
        Method::Hybrid => (
            "0 -> R @fast\nR + X -> X @slow\nX -> Y @slow".to_owned(),
            2.0,
            Some(0.25),
        ),
        Method::Ssa | Method::Ode | Method::Tau => ("X -> Y @slow".to_owned(), 1.0e4, None),
    };
    SubmitRequest {
        tenant: "repro".to_owned(),
        program: Program::Crn(network),
        init: vec![("X".to_owned(), 32.0)],
        method,
        t_end,
        record_interval,
        seed: 11,
        injections: vec![(1.0, "X".to_owned(), 5.0)],
        batch,
        cells,
    }
}

/// A job that cannot finish on its own (a two-way flip keeps firing SSA
/// events for an astronomical horizon) — the cancellation probe.
fn endless_job(tenant: &str) -> SubmitRequest {
    SubmitRequest {
        tenant: tenant.to_owned(),
        program: Program::Crn("X -> Y @slow\nY -> X @slow".to_owned()),
        init: vec![("X".to_owned(), 64.0)],
        method: Method::Ssa,
        t_end: 1.0e9,
        record_interval: None,
        seed: 5,
        injections: vec![],
        batch: Some(1),
        cells: (0..2)
            .map(|i| CellSpec {
                label: format!("endless rep={i}"),
                k_fast: None,
                k_slow: None,
            })
            .collect(),
    }
}

fn render_rows(rows: &[CellRow]) -> String {
    let mut out = String::new();
    for row in rows {
        row.to_json().render_compact(&mut out);
        out.push('\n');
    }
    out
}

fn counter(stats: &[(String, f64)], name: &str) -> f64 {
    stats
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0.0, |(_, v)| *v)
}

fn persist(dir: &Path, id: &str, summary: &SweepSummary) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create summary dir {}: {e}", dir.display()))?;
    for (ext, body) in [("json", summary.to_json()), ("csv", summary.to_csv())] {
        let path = dir.join(format!("{id}.summary.{ext}"));
        std::fs::write(&path, body).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(())
}

/// Runs the smoke suite against the server at `addr`, driving the main
/// sweep with `method` (`repro --method ssa|ode|tau|hybrid` picks the
/// integrator raced over the wire; the default is SSA).
///
/// `batch` is the main sweep's lock-step width: `None` leaves the wire
/// field out so the server auto-selects a width from the cell count,
/// `Some(w)` pins it (`repro --batch`). `t_end` optionally overrides the
/// main sweep's horizon (`repro --t-end`, validated at flag parse just
/// as the server validates the wire field at submit).
///
/// `budget_tenant` optionally names a tenant the server was configured
/// to step-budget; the budget probe submits under that name and expects
/// every cell cut. The budget probe always runs the scalar SSA sweep —
/// the tenant's step budget is calibrated against it — so its outcome
/// does not move with `method`, `batch`, or `t_end`. `summary_dir`
/// persists the deterministic artifacts.
///
/// Returns the human-readable report on success.
///
/// # Errors
///
/// A description of the first failed connection, probe, or persistence
/// step — callers exit nonzero on it.
pub fn run_via_server(
    addr: &str,
    method: Method,
    batch: Option<usize>,
    t_end: Option<f64>,
    budget_tenant: Option<&str>,
    summary_dir: Option<&Path>,
) -> Result<String, String> {
    let mut report = String::new();
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;

    // probe 1: byte-identical resubmission + compiled-CRN cache reuse
    let mut request = main_sweep(method, batch);
    if let Some(horizon) = t_end {
        request.t_end = horizon;
    }
    let first = client
        .submit(&request)
        .map_err(|e| format!("main sweep rejected: {e}"))?;
    let rows = client
        .fetch_all(&first.job_id)
        .map_err(|e| format!("main sweep failed: {e}"))?;
    let not_ok = rows.iter().filter(|r| r.status != JobStatus::Ok).count();
    if not_ok > 0 {
        return Err(format!("main sweep: {not_ok}/{} cells not Ok", rows.len()));
    }
    let again = client
        .submit(&request)
        .map_err(|e| format!("resubmission rejected: {e}"))?;
    let rows_again = client
        .fetch_all(&again.job_id)
        .map_err(|e| format!("resubmission failed: {e}"))?;
    if render_rows(&rows) != render_rows(&rows_again) {
        return Err("resubmitted sweep is not byte-identical to the first run".to_owned());
    }
    let stats = client.stats().map_err(|e| format!("stats failed: {e}"))?;
    let hits = counter(&stats, "cache_hits");
    if hits < 1.0 {
        return Err(format!("expected compiled-CRN cache hits, saw {hits}"));
    }
    report.push_str(&format!(
        "via-server: main sweep ({}) {} cells Ok twice, byte-identical; cache {} hit(s) / {} miss(es)\n",
        method.as_str(),
        rows.len(),
        hits,
        counter(&stats, "cache_misses"),
    ));

    // probe 2: cancellation drains the job with every cell Cancelled
    let endless = client
        .submit(&endless_job("repro"))
        .map_err(|e| format!("cancel probe rejected: {e}"))?;
    client
        .cancel(&endless.job_id)
        .map_err(|e| format!("cancel failed: {e}"))?;
    let cancelled = client
        .fetch_all(&endless.job_id)
        .map_err(|e| format!("cancelled job did not drain: {e}"))?;
    let uncancelled = cancelled
        .iter()
        .filter(|r| r.status != JobStatus::Cancelled)
        .count();
    if uncancelled > 0 {
        return Err(format!(
            "cancel probe: {uncancelled}/{} cells not Cancelled",
            cancelled.len()
        ));
    }
    report.push_str(&format!(
        "via-server: cancel probe drained {} cells, all Cancelled\n",
        cancelled.len()
    ));

    // probe 3 (optional): a step-budgeted tenant is cut deterministically
    if let Some(tenant) = budget_tenant {
        let heavy = SubmitRequest {
            tenant: tenant.to_owned(),
            init: vec![("X".to_owned(), 500.0)],
            ..main_sweep(Method::Ssa, Some(1))
        };
        let ack = client
            .submit(&heavy)
            .map_err(|e| format!("budget probe rejected: {e}"))?;
        let cut = client
            .fetch_all(&ack.job_id)
            .map_err(|e| format!("budget probe failed: {e}"))?;
        let unbudgeted = cut
            .iter()
            .filter(|r| r.status != JobStatus::BudgetExceeded)
            .count();
        if unbudgeted > 0 {
            return Err(format!(
                "budget probe: {unbudgeted}/{} cells not BudgetExceeded under tenant `{tenant}`",
                cut.len()
            ));
        }
        report.push_str(&format!(
            "via-server: budget probe cut all {} cells of tenant `{tenant}` deterministically\n",
            cut.len()
        ));
    }

    if let Some(dir) = summary_dir {
        persist(dir, "via-server", &rows_to_summary(&rows, 1))?;
        let stats = client
            .stats()
            .map_err(|e| format!("final stats failed: {e}"))?;
        persist(dir, "server-stats", &stats_summary(&stats))?;
        report.push_str(&format!(
            "via-server: summaries persisted to {}\n",
            dir.display()
        ));
    }
    Ok(report)
}
