//! E5 — construct costs: how many species and reactions each building
//! block and each demonstrated design needs (the paper's cost table).
//!
//! Expected shape: a delay element costs a handful of reactions; the
//! indicator machinery is shared (three indicators regardless of size);
//! design cost grows linearly with datapath width.

use crate::{ExpCtx, Report};
use molseq_crn::CrnStats;
use molseq_dsp::{biquad, moving_average, Ratio};
use molseq_sync::{BinaryCounter, Clock, ClockSpec, DelayChain, SchemeConfig};

fn row(report: &mut Report, name: &str, stats: CrnStats) {
    report.line(format!(
        "{name:28} | {:7} | {:9} | {:4} | {:4} | {:6} | {:6} | {:6}",
        stats.species,
        stats.reactions,
        stats.fast,
        stats.slow,
        stats.order0,
        stats.order1,
        stats.order2
    ));
}

/// Runs the experiment.
pub fn run(_ctx: &ExpCtx) -> Report {
    let mut report = Report::new("e5", "construct costs");
    report.line(
        "construct                    | species | reactions | fast | slow | order0 | order1 | order2"
            .to_owned(),
    );

    let config = SchemeConfig::default();
    let clock = Clock::build(config, 100.0).expect("clock");
    row(
        &mut report,
        "clock (1-element ring)",
        CrnStats::of(clock.crn()),
    );

    for n in [1usize, 2, 4, 8] {
        let chain = DelayChain::build(config, n).expect("chain");
        row(
            &mut report,
            &format!("delay chain, n = {n}"),
            CrnStats::of(chain.crn()),
        );
    }

    let ma2 = moving_average(2, ClockSpec::default()).expect("ma2");
    row(&mut report, "moving average (2 taps)", ma2.system().stats());
    let ma4 = moving_average(4, ClockSpec::default()).expect("ma4");
    row(&mut report, "moving average (4 taps)", ma4.system().stats());

    let bq = biquad(
        [
            Ratio::new(1, 2).expect("ratio"),
            Ratio::new(1, 4).expect("ratio"),
            Ratio::new(1, 4).expect("ratio"),
        ],
        [
            Ratio::new(1, 2).expect("ratio"),
            Ratio::new(1, 4).expect("ratio"),
        ],
        ClockSpec::default(),
    )
    .expect("biquad");
    row(&mut report, "biquad section", bq.system().stats());

    for bits in [2usize, 3, 4] {
        let counter = BinaryCounter::build(bits, 60.0, ClockSpec::default()).expect("counter");
        row(
            &mut report,
            &format!("binary counter, {bits} bits"),
            counter.system().stats(),
        );
    }

    // headline scaling metrics
    let chain1 = CrnStats::of(DelayChain::build(config, 1).expect("chain").crn());
    let chain8 = CrnStats::of(DelayChain::build(config, 8).expect("chain").crn());
    let per_element = (chain8.reactions - chain1.reactions) as f64 / 7.0;
    report.metric("reactions per added delay element", per_element);
    let c2 = BinaryCounter::build(2, 60.0, ClockSpec::default()).expect("counter");
    let c4 = BinaryCounter::build(4, 60.0, ClockSpec::default()).expect("counter");
    report.metric(
        "reactions per added counter bit",
        (c4.system().stats().reactions - c2.system().stats().reactions) as f64 / 2.0,
    );
    report.line("expected: linear growth; three shared indicators regardless of size".to_owned());
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn costs_scale_linearly() {
        let report = super::run(&crate::ExpCtx::quick());
        let per_element = report
            .metric_value("reactions per added delay element")
            .unwrap();
        assert!(per_element > 2.0 && per_element < 20.0, "{per_element}");
        let per_bit = report
            .metric_value("reactions per added counter bit")
            .unwrap();
        assert!(per_bit > 5.0 && per_bit < 120.0, "{per_bit}");
    }
}
