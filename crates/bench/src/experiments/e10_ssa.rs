//! E10 — stochastic validity: the clocked constructs at finite molecule
//! counts, under Gillespie dynamics. The ODE picture assumes continuous
//! concentrations; a DNA implementation has discrete molecules and every
//! reaction is a race of random events.
//!
//! Two probes with opposite sensitivities:
//!
//! * the **binary counter** — its carry logic compares quantities by
//!   annihilation, which is conservation-based and therefore *count-exact*:
//!   it decodes correctly even at single-digit amplitudes;
//! * the **moving-average filter** — halving is a pairing reaction, so an
//!   odd molecule is lost to the parity leak each time a sum is odd: a
//!   genuine ±½-molecule quantization error whose *relative* size falls as
//!   `1/N`.
//!
//! Expected shape: logic reliability is essentially perfect at all counts;
//! arithmetic precision improves inversely with amplitude.

use crate::Report;
use molseq_crn::RateAssignment;
use molseq_dsp::{moving_average, rmse};
use molseq_kinetics::{simulate_ssa, Schedule, SimSpec, SsaOptions};
use molseq_sync::{BinaryCounter, ClockSpec, SyncRun};

/// One stochastic counter run: three pulses at amplitude `n`; returns the
/// decoded final count.
fn count_three(counter: &BinaryCounter, seed: u64) -> Option<u32> {
    let system = counter.system();
    let pulses = counter.pulse_train(&[true, true, true, false, false, false]);
    let schedule = Schedule::new().trigger(system.input_trigger("pulse", &pulses).ok()?);
    // dimer ignition is slower at integer counts (a feedback intermediate
    // must exist as a whole molecule), so cycles stretch vs the ODE run
    let opts = SsaOptions::default()
        .with_t_end(220.0)
        .with_record_interval(1.0)
        .with_seed(seed);
    let trace = simulate_ssa(
        system.crn(),
        &system.initial_state(),
        &schedule,
        &opts,
        &SimSpec::new(RateAssignment::default()),
    )
    .ok()?;
    let run = SyncRun::from_trace(system, trace);
    counter.decode(&run, run.cycles().checked_sub(1)?).ok()
}

/// One stochastic filter run at integer amplitude `n`: returns the RMS
/// error against the ideal response, in *relative* units of `n`.
fn filter_noise(n: f64, seed: u64) -> Option<f64> {
    let filter = moving_average(2, ClockSpec::default()).ok()?;
    let system = filter.system();
    // odd/even mix so parity losses actually occur
    let samples: Vec<f64> = [1.0, 3.0, 2.0, 5.0, 4.0, 1.0]
        .iter()
        .map(|&k| (k / 5.0 * n).round())
        .collect();
    let schedule = Schedule::new().trigger(system.input_trigger("x", &samples).ok()?);
    let opts = SsaOptions::default()
        .with_t_end(400.0)
        .with_record_interval(1.0)
        .with_seed(seed);
    let trace = simulate_ssa(
        system.crn(),
        &system.initial_state(),
        &schedule,
        &opts,
        &SimSpec::new(RateAssignment::default()),
    )
    .ok()?;
    let run = SyncRun::from_trace(system, trace);
    if run.cycles() < samples.len() {
        return None;
    }
    let measured: Vec<f64> = run.register_series("y").ok()?[..samples.len()].to_vec();
    let ideal = filter.ideal_response(&samples);
    Some(rmse(&measured, &ideal) / n)
}

/// Runs the experiment.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new("e10", "stochastic validity at small counts");

    // panel 1: the counter is count-exact
    let amplitudes: Vec<f64> = if quick { vec![8.0] } else { vec![4.0, 8.0, 32.0] };
    let runs = if quick { 2 } else { 6 };
    report.line(format!(
        "counter (2 bits, 3 pulses) under Gillespie dynamics, {runs} seeds per amplitude:"
    ));
    report.line("amplitude | correct decodes".to_owned());
    for &n in &amplitudes {
        let counter =
            BinaryCounter::build(2, n, ClockSpec::default()).expect("counter builds");
        let correct = (0..runs)
            .filter(|&s| count_three(&counter, 11 + s) == Some(3))
            .count();
        report.line(format!("{n:9.0} | {correct}/{runs}"));
        if n == *amplitudes.last().expect("nonempty") {
            report.metric("counter success rate", correct as f64 / runs as f64);
        }
    }

    // panel 2: the filter's quantization error falls with amplitude
    let filter_amplitudes: Vec<f64> = if quick {
        vec![10.0, 40.0]
    } else {
        vec![5.0, 10.0, 20.0, 40.0, 80.0]
    };
    let filter_runs = if quick { 2 } else { 4 };
    report.line(format!(
        "moving-average filter, odd/even stream, {filter_runs} seeds per amplitude:"
    ));
    report.line("amplitude | mean relative RMS error | stalled runs".to_owned());
    for &n in &filter_amplitudes {
        let mut errors = Vec::new();
        let mut stalled = 0usize;
        for seed in 0..filter_runs {
            match filter_noise(n, 101 + seed) {
                Some(e) => errors.push(e),
                None => stalled += 1,
            }
        }
        let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
        report.line(format!("{n:9.0} | {mean:22.4} | {stalled:12}"));
        if n == *filter_amplitudes.last().expect("nonempty") {
            report.metric("filter relative RMS at largest amplitude", mean);
        }
        if n == filter_amplitudes[0] {
            report.metric("filter relative RMS at smallest amplitude", mean);
        }
    }
    report.line(
        "expected: conservation-based logic is count-exact at any amplitude; pairing-based arithmetic carries a ±half-molecule quantization error that shrinks as 1/N"
            .to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn counter_is_count_exact_and_filter_quantizes() {
        let report = super::run(true);
        let success = report.metric_value("counter success rate").unwrap();
        assert!(success > 0.49, "{report}");
        let noise = report
            .metric_value("filter relative RMS at largest amplitude")
            .unwrap();
        assert!(noise < 0.2, "{report}");
    }
}
