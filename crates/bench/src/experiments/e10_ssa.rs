//! E10 — stochastic validity: the clocked constructs at finite molecule
//! counts, under Gillespie dynamics. The ODE picture assumes continuous
//! concentrations; a DNA implementation has discrete molecules and every
//! reaction is a race of random events.
//!
//! Two probes with opposite sensitivities:
//!
//! * the **binary counter** — its carry logic compares quantities by
//!   annihilation, which is conservation-based and therefore *count-exact*:
//!   it decodes correctly even at single-digit amplitudes;
//! * the **moving-average filter** — halving is a pairing reaction, so an
//!   odd molecule is lost to the parity leak each time a sum is odd: a
//!   genuine ±½-molecule quantization error whose *relative* size falls as
//!   `1/N`.
//!
//! Expected shape: logic reliability is essentially perfect at all counts;
//! arithmetic precision improves inversely with amplitude.
//!
//! Replicates are sweep cells, stamped out by a
//! [`Replicator`](molseq_kinetics::Replicator): each network is compiled
//! once, shared across its seeds, and the seeds run in parallel on the
//! [`molseq_sweep`] engine. Replicate seeds derive from the base seed and
//! replicate number only, so the report is byte-identical at any worker
//! count and stable when the grid grows.

use crate::{ExpCtx, Report};
use molseq_crn::RateAssignment;
use molseq_dsp::{moving_average, rmse, Filter};
use molseq_kinetics::{
    CompiledCrn, Replicator, Schedule, SimError, SimMetrics, SimSpec, Simulation, SsaOptions,
};
use molseq_sweep::{run_sweep, JobCtx, JobError, SweepJob};
use molseq_sync::{BinaryCounter, ClockSpec, SyncRun};
use std::cell::Cell;

/// One stochastic counter run: three pulses at amplitude `n`; returns the
/// decoded final count (`None` for a domain failure — a stalled or
/// mis-decoding run), or `Err` if the job budget interrupted it.
fn count_three(
    counter: &BinaryCounter,
    compiled: &CompiledCrn,
    seed: u64,
    job: &JobCtx,
) -> Result<Option<u32>, JobError> {
    let system = counter.system();
    let pulses = counter.pulse_train(&[true, true, true, false, false, false]);
    let Ok(trigger) = system.input_trigger("pulse", &pulses) else {
        return Ok(None);
    };
    let schedule = Schedule::new().trigger(trigger);
    // dimer ignition is slower at integer counts (a feedback intermediate
    // must exist as a whole molecule), so cycles stretch vs the ODE run
    let hook = job.step_hook();
    let sink = Cell::new(SimMetrics::default());
    let opts = SsaOptions::default()
        .with_t_end(220.0)
        .with_record_interval(1.0)
        .with_seed(seed)
        .with_step_hook(&hook)
        .with_metrics(&sink);
    let result = Simulation::new(system.crn(), compiled)
        .init(&system.initial_state())
        .schedule(&schedule)
        .options(opts)
        .run();
    crate::record_sim_metrics(job, sink.get());
    let trace = match result {
        Ok(t) => t,
        Err(SimError::Interrupted { time, reason }) => {
            return Err(JobError::BudgetExceeded(format!(
                "interrupted at t = {time}: {reason}"
            )))
        }
        Err(_) => return Ok(None),
    };
    let run = SyncRun::from_trace(system, trace);
    let Some(last) = run.cycles().checked_sub(1) else {
        return Ok(None);
    };
    Ok(counter.decode(&run, last).ok())
}

/// One stochastic filter run at integer amplitude `n`: returns the RMS
/// error against the ideal response, in *relative* units of `n` (`None`
/// for a stalled run), or `Err` if the job budget interrupted it.
fn filter_noise(
    filter: &Filter,
    compiled: &CompiledCrn,
    n: f64,
    seed: u64,
    job: &JobCtx,
) -> Result<Option<f64>, JobError> {
    let system = filter.system();
    // odd/even mix so parity losses actually occur
    let samples: Vec<f64> = [1.0, 3.0, 2.0, 5.0, 4.0, 1.0]
        .iter()
        .map(|&k| (k / 5.0 * n).round())
        .collect();
    let Ok(trigger) = system.input_trigger("x", &samples) else {
        return Ok(None);
    };
    let schedule = Schedule::new().trigger(trigger);
    let hook = job.step_hook();
    let sink = Cell::new(SimMetrics::default());
    let opts = SsaOptions::default()
        .with_t_end(400.0)
        .with_record_interval(1.0)
        .with_seed(seed)
        .with_step_hook(&hook)
        .with_metrics(&sink);
    let result = Simulation::new(system.crn(), compiled)
        .init(&system.initial_state())
        .schedule(&schedule)
        .options(opts)
        .run();
    crate::record_sim_metrics(job, sink.get());
    let trace = match result {
        Ok(t) => t,
        Err(SimError::Interrupted { time, reason }) => {
            return Err(JobError::BudgetExceeded(format!(
                "interrupted at t = {time}: {reason}"
            )))
        }
        Err(_) => return Ok(None),
    };
    let run = SyncRun::from_trace(system, trace);
    if run.cycles() < samples.len() {
        return Ok(None);
    }
    let Ok(series) = run.register_series("y") else {
        return Ok(None);
    };
    let measured: Vec<f64> = series[..samples.len()].to_vec();
    let ideal = filter.ideal_response(&samples);
    Ok(Some(rmse(&measured, &ideal) / n))
}

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let quick = ctx.quick;
    let mut report = Report::new("e10", "stochastic validity at small counts");

    // panel 1: the counter is count-exact
    let amplitudes: Vec<f64> = if quick {
        vec![8.0]
    } else {
        vec![4.0, 8.0, 32.0]
    };
    let runs: u64 = if quick { 2 } else { 6 };
    // one build + compile per amplitude, shared by all of its replicates
    let counters: Vec<(f64, BinaryCounter, CompiledCrn)> = amplitudes
        .iter()
        .map(|&n| {
            let counter = BinaryCounter::build(2, n, ClockSpec::default()).expect("counter builds");
            let compiled = CompiledCrn::new(
                counter.system().crn(),
                &SimSpec::new(RateAssignment::default()),
            );
            (n, counter, compiled)
        })
        .collect();
    let counter_jobs: Vec<SweepJob<'_, Option<u32>>> = counters
        .iter()
        .flat_map(|(n, counter, compiled)| {
            Replicator::new(compiled, 11).jobs(
                format!("counter n={n}"),
                runs as usize,
                move |compiled, seed, job| count_three(counter, compiled, seed, job),
            )
        })
        .collect();
    let counter_out = run_sweep(&counter_jobs, &ctx.sweep_options());
    ctx.persist_summary("e10-counter", &counter_out.summary);

    report.line(format!(
        "counter (2 bits, 3 pulses) under Gillespie dynamics, {runs} seeds per amplitude:"
    ));
    report.line("amplitude | correct decodes".to_owned());
    for (row, &n) in amplitudes.iter().enumerate() {
        let cells = &counter_out.cells[row * runs as usize..(row + 1) * runs as usize];
        let correct = cells.iter().filter(|c| c.value() == Some(&Some(3))).count();
        report.line(format!("{n:9.0} | {correct}/{runs}"));
        if n == *amplitudes.last().expect("nonempty") {
            report.metric("counter success rate", correct as f64 / runs as f64);
        }
    }

    // panel 2: the filter's quantization error falls with amplitude
    let filter_amplitudes: Vec<f64> = if quick {
        vec![10.0, 40.0]
    } else {
        vec![5.0, 10.0, 20.0, 40.0, 80.0]
    };
    let filter_runs: u64 = if quick { 2 } else { 4 };
    // the filter network does not depend on the amplitude: compile once
    let filter = moving_average(2, ClockSpec::default()).expect("filter builds");
    let filter_compiled = CompiledCrn::new(
        filter.system().crn(),
        &SimSpec::new(RateAssignment::default()),
    );
    let filter_rep = Replicator::new(&filter_compiled, 101);
    let filter_jobs: Vec<SweepJob<'_, Option<f64>>> = filter_amplitudes
        .iter()
        .flat_map(|&n| {
            let filter = &filter;
            filter_rep.jobs(
                format!("filter n={n}"),
                filter_runs as usize,
                move |compiled, seed, job| filter_noise(filter, compiled, n, seed, job),
            )
        })
        .collect();
    let filter_out = run_sweep(&filter_jobs, &ctx.sweep_options());
    ctx.persist_summary("e10-filter", &filter_out.summary);

    report.line(format!(
        "moving-average filter, odd/even stream, {filter_runs} seeds per amplitude:"
    ));
    report.line("amplitude | mean relative RMS error | stalled runs".to_owned());
    for (row, &n) in filter_amplitudes.iter().enumerate() {
        let cells = &filter_out.cells[row * filter_runs as usize..(row + 1) * filter_runs as usize];
        let errors: Vec<f64> = cells
            .iter()
            .filter_map(|c| c.value().copied().flatten())
            .collect();
        let stalled = cells.len() - errors.len();
        let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
        report.line(format!("{n:9.0} | {mean:22.4} | {stalled:12}"));
        if n == *filter_amplitudes.last().expect("nonempty") {
            report.metric("filter relative RMS at largest amplitude", mean);
        }
        if n == filter_amplitudes[0] {
            report.metric("filter relative RMS at smallest amplitude", mean);
        }
    }
    report.line(
        "expected: conservation-based logic is count-exact at any amplitude; pairing-based arithmetic carries a ±half-molecule quantization error that shrinks as 1/N"
            .to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    use crate::ExpCtx;

    #[test]
    fn counter_is_count_exact_and_filter_quantizes() {
        let report = super::run(&ExpCtx::quick());
        let success = report.metric_value("counter success rate").unwrap();
        assert!(success > 0.49, "{report}");
        let noise = report
            .metric_value("filter relative RMS at largest amplitude")
            .unwrap();
        assert!(noise < 0.2, "{report}");
    }

    #[test]
    fn parallel_report_matches_serial() {
        let serial = super::run(&ExpCtx::quick().with_jobs(1));
        let parallel = super::run(&ExpCtx::quick().with_jobs(4));
        assert_eq!(serial.to_string(), parallel.to_string());
    }
}
