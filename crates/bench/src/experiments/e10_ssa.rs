//! E10 — stochastic validity: the clocked constructs at finite molecule
//! counts, under Gillespie dynamics. The ODE picture assumes continuous
//! concentrations; a DNA implementation has discrete molecules and every
//! reaction is a race of random events.
//!
//! Two probes with opposite sensitivities:
//!
//! * the **binary counter** — its carry logic compares quantities by
//!   annihilation, which is conservation-based and therefore *count-exact*:
//!   it decodes correctly even at single-digit amplitudes;
//! * the **moving-average filter** — halving is a pairing reaction, so an
//!   odd molecule is lost to the parity leak each time a sum is odd: a
//!   genuine ±½-molecule quantization error whose *relative* size falls as
//!   `1/N`.
//!
//! Expected shape: logic reliability is essentially perfect at all counts;
//! arithmetic precision improves inversely with amplitude.
//!
//! Replicates are sweep cells, stamped out by a
//! [`Replicator`](molseq_kinetics::Replicator) through
//! [`ssa_replicate_units`](crate::ssa_replicate_units): each network is
//! compiled once, shared across its seeds, and — when the context sets a
//! batch width — consecutive replicates advance in lock step through one
//! `run_ssa_batch` call. Replicate seeds derive from the base seed and
//! replicate number only, so the report is byte-identical at any worker
//! count and any batch width, and stable when the grid grows.

use crate::{ssa_replicate_units, ExpCtx, Report};
use molseq_crn::RateAssignment;
use molseq_dsp::{moving_average, rmse, Filter};
use molseq_kinetics::{
    CompiledCrn, MetricsSink, Replicator, Schedule, SimError, SimSpec, SsaOptions, State, StepHook,
    Trace,
};
use molseq_sweep::{run_units, JobError, SweepUnit};
use molseq_sync::{BinaryCounter, ClockSpec, SyncRun};

/// Decodes one stochastic counter trace: three pulses at amplitude `n`;
/// returns the decoded final count (`None` for a domain failure — a
/// stalled or mis-decoding run), or `Err` if the job budget interrupted
/// the simulation.
fn decode_counter(
    counter: &BinaryCounter,
    result: Result<Trace, SimError>,
) -> Result<Option<u32>, JobError> {
    let trace = match result {
        Ok(t) => t,
        Err(SimError::Interrupted { time, reason }) => {
            return Err(JobError::BudgetExceeded(format!(
                "interrupted at t = {time}: {reason}"
            )))
        }
        Err(_) => return Ok(None),
    };
    let run = SyncRun::from_trace(counter.system(), trace);
    let Some(last) = run.cycles().checked_sub(1) else {
        return Ok(None);
    };
    Ok(counter.decode(&run, last).ok())
}

/// Scores one stochastic filter trace at integer amplitude `n`: returns
/// the RMS error against the ideal response, in *relative* units of `n`
/// (`None` for a stalled run), or `Err` if the job budget interrupted the
/// simulation.
fn filter_rms(
    filter: &Filter,
    samples: &[f64],
    n: f64,
    result: Result<Trace, SimError>,
) -> Result<Option<f64>, JobError> {
    let trace = match result {
        Ok(t) => t,
        Err(SimError::Interrupted { time, reason }) => {
            return Err(JobError::BudgetExceeded(format!(
                "interrupted at t = {time}: {reason}"
            )))
        }
        Err(_) => return Ok(None),
    };
    let run = SyncRun::from_trace(filter.system(), trace);
    if run.cycles() < samples.len() {
        return Ok(None);
    }
    let Ok(series) = run.register_series("y") else {
        return Ok(None);
    };
    let measured: Vec<f64> = series[..samples.len()].to_vec();
    let ideal = filter.ideal_response(samples);
    Ok(Some(rmse(&measured, &ideal) / n))
}

/// Per-replicate SSA options for the counter panel. Dimer ignition is
/// slower at integer counts (a feedback intermediate must exist as a
/// whole molecule), so cycles stretch vs the ODE run — hence the long
/// horizon.
fn counter_opts<'h>(seed: u64, hook: StepHook<'h>, sink: MetricsSink<'h>) -> SsaOptions<'h> {
    SsaOptions::default()
        .with_t_end(220.0)
        .with_record_interval(1.0)
        .with_seed(seed)
        .with_step_hook(hook)
        .with_metrics(sink)
}

/// Per-replicate SSA options for the filter panel.
fn filter_opts<'h>(seed: u64, hook: StepHook<'h>, sink: MetricsSink<'h>) -> SsaOptions<'h> {
    SsaOptions::default()
        .with_t_end(400.0)
        .with_record_interval(1.0)
        .with_seed(seed)
        .with_step_hook(hook)
        .with_metrics(sink)
}

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let quick = ctx.quick;
    let mut report = Report::new("e10", "stochastic validity at small counts");

    // panel 1: the counter is count-exact
    let amplitudes: Vec<f64> = if quick {
        vec![8.0]
    } else {
        vec![4.0, 8.0, 32.0]
    };
    let runs: u64 = if quick { 2 } else { 6 };
    // one build + compile per amplitude, shared by all of its replicates;
    // the pulse schedule and initial state are fixed per amplitude, so
    // they too are built once and shared across the replicate lanes
    let counters: Vec<(f64, BinaryCounter, CompiledCrn, State, Option<Schedule>)> = amplitudes
        .iter()
        .map(|&n| {
            let counter = BinaryCounter::build(2, n, ClockSpec::default()).expect("counter builds");
            let compiled = CompiledCrn::new(
                counter.system().crn(),
                &SimSpec::new(RateAssignment::default()),
            );
            let init = counter.system().initial_state();
            let pulses = counter.pulse_train(&[true, true, true, false, false, false]);
            let schedule = counter
                .system()
                .input_trigger("pulse", &pulses)
                .ok()
                .map(|trigger| Schedule::new().trigger(trigger));
            (n, counter, compiled, init, schedule)
        })
        .collect();
    let counter_units: Vec<SweepUnit<'_, Option<u32>>> = counters
        .iter()
        .flat_map(|(n, counter, compiled, init, schedule)| {
            let rep = Replicator::new(compiled, 11);
            let label = format!("counter n={n}");
            match schedule {
                Some(schedule) => ssa_replicate_units(
                    counter.system().crn(),
                    rep,
                    init,
                    schedule,
                    counter_opts,
                    &label,
                    runs as usize,
                    ctx.batch,
                    move |_job, result| decode_counter(counter, result),
                ),
                // an un-triggerable system stalls by definition
                None => rep
                    .jobs(label, runs as usize, |_c, _seed, _job| Ok(None))
                    .into_iter()
                    .map(SweepUnit::Single)
                    .collect(),
            }
        })
        .collect();
    let counter_out = run_units(&counter_units, &ctx.sweep_options());
    ctx.persist_summary("e10-counter", &counter_out.summary);

    report.line(format!(
        "counter (2 bits, 3 pulses) under Gillespie dynamics, {runs} seeds per amplitude:"
    ));
    report.line("amplitude | correct decodes".to_owned());
    for (row, &n) in amplitudes.iter().enumerate() {
        let cells = &counter_out.cells[row * runs as usize..(row + 1) * runs as usize];
        let correct = cells.iter().filter(|c| c.value() == Some(&Some(3))).count();
        report.line(format!("{n:9.0} | {correct}/{runs}"));
        if n == *amplitudes.last().expect("nonempty") {
            report.metric("counter success rate", correct as f64 / runs as f64);
        }
    }

    // panel 2: the filter's quantization error falls with amplitude
    let filter_amplitudes: Vec<f64> = if quick {
        vec![10.0, 40.0]
    } else {
        vec![5.0, 10.0, 20.0, 40.0, 80.0]
    };
    let filter_runs: u64 = if quick { 2 } else { 4 };
    // the filter network does not depend on the amplitude: compile once
    let filter = moving_average(2, ClockSpec::default()).expect("filter builds");
    let filter_compiled = CompiledCrn::new(
        filter.system().crn(),
        &SimSpec::new(RateAssignment::default()),
    );
    let filter_init = filter.system().initial_state();
    let filter_rep = Replicator::new(&filter_compiled, 101);
    // per-amplitude input stream (odd/even mix so parity losses actually
    // occur) and its injection schedule
    let filter_panels: Vec<(f64, Vec<f64>, Option<Schedule>)> = filter_amplitudes
        .iter()
        .map(|&n| {
            let samples: Vec<f64> = [1.0, 3.0, 2.0, 5.0, 4.0, 1.0]
                .iter()
                .map(|&k| (k / 5.0 * n).round())
                .collect();
            let schedule = filter
                .system()
                .input_trigger("x", &samples)
                .ok()
                .map(|trigger| Schedule::new().trigger(trigger));
            (n, samples, schedule)
        })
        .collect();
    let filter_units: Vec<SweepUnit<'_, Option<f64>>> = filter_panels
        .iter()
        .flat_map(|(n, samples, schedule)| {
            let filter = &filter;
            let n = *n;
            let label = format!("filter n={n}");
            match schedule {
                Some(schedule) => ssa_replicate_units(
                    filter.system().crn(),
                    filter_rep,
                    &filter_init,
                    schedule,
                    filter_opts,
                    &label,
                    filter_runs as usize,
                    ctx.batch,
                    move |_job, result| filter_rms(filter, samples, n, result),
                ),
                None => filter_rep
                    .jobs(label, filter_runs as usize, |_c, _seed, _job| Ok(None))
                    .into_iter()
                    .map(SweepUnit::Single)
                    .collect(),
            }
        })
        .collect();
    let filter_out = run_units(&filter_units, &ctx.sweep_options());
    ctx.persist_summary("e10-filter", &filter_out.summary);

    report.line(format!(
        "moving-average filter, odd/even stream, {filter_runs} seeds per amplitude:"
    ));
    report.line("amplitude | mean relative RMS error | stalled runs".to_owned());
    for (row, &n) in filter_amplitudes.iter().enumerate() {
        let cells = &filter_out.cells[row * filter_runs as usize..(row + 1) * filter_runs as usize];
        let errors: Vec<f64> = cells
            .iter()
            .filter_map(|c| c.value().copied().flatten())
            .collect();
        let stalled = cells.len() - errors.len();
        let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
        report.line(format!("{n:9.0} | {mean:22.4} | {stalled:12}"));
        if n == *filter_amplitudes.last().expect("nonempty") {
            report.metric("filter relative RMS at largest amplitude", mean);
        }
        if n == filter_amplitudes[0] {
            report.metric("filter relative RMS at smallest amplitude", mean);
        }
    }
    report.line(
        "expected: conservation-based logic is count-exact at any amplitude; pairing-based arithmetic carries a ±half-molecule quantization error that shrinks as 1/N"
            .to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    use crate::ExpCtx;

    #[test]
    fn counter_is_count_exact_and_filter_quantizes() {
        let report = super::run(&ExpCtx::quick());
        let success = report.metric_value("counter success rate").unwrap();
        assert!(success > 0.49, "{report}");
        let noise = report
            .metric_value("filter relative RMS at largest amplitude")
            .unwrap();
        assert!(noise < 0.2, "{report}");
    }

    #[test]
    fn parallel_report_matches_serial() {
        let serial = super::run(&ExpCtx::quick().with_jobs(1));
        let parallel = super::run(&ExpCtx::quick().with_jobs(4));
        assert_eq!(serial.to_string(), parallel.to_string());
    }

    #[test]
    fn batched_report_matches_scalar() {
        // the lock-step SSA lanes must be bit-identical to scalar runs,
        // so the rendered report cannot change with the batch width
        let scalar = super::run(&ExpCtx::quick());
        let batched = super::run(&ExpCtx::quick().with_batch(4));
        assert_eq!(scalar.to_string(), batched.to_string());
    }
}
