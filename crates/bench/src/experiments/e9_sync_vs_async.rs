//! E9 — clocked vs self-timed transfer latency: the trade the two sibling
//! papers stake out. A clocked design pays a full phase rotation per cycle
//! whether or not data moves; a self-timed chain advances exactly as fast
//! as its own occupancy allows.
//!
//! Expected shape: both scale linearly in chain length; the self-timed
//! chain's latency per element is smaller, because the clocked design
//! paces every hop by the (token-sized) clock rotation.
//!
//! Each chain length is one sweep cell (both measurements of a row share
//! a metrics sink and a budget meter), so the scan parallelizes across
//! lengths while the report stays byte-identical at any worker count.

use crate::{sync_job_error, ExpCtx, Report};
use molseq_async::{AsyncPipeline, HopOp, MeasureConfig};
use molseq_kinetics::{crossings, SimMetrics};
use molseq_sweep::{run_sweep, SweepJob};
use molseq_sync::{
    drive_cycles, stored_value_terms, ClockSpec, CycleResources, RunConfig, SchemeConfig,
    SyncCircuit, SyncError,
};
use std::cell::Cell;

/// Latency of a value through `n` clocked registers, measured from the
/// trace: time at which the output register first holds 95% of the value
/// (`None` if it never does within the horizon).
fn sync_latency(n: usize, x: f64, config: &RunConfig) -> Result<Option<f64>, SyncError> {
    let mut circuit = SyncCircuit::new(ClockSpec::default());
    let input = circuit.input("x");
    let mut node = input;
    for i in 0..n {
        node = circuit.delay(&format!("d{i}"), node);
    }
    circuit.output("y", node);
    let system = circuit.compile()?;
    let samples = vec![x];
    let run = drive_cycles(
        &system,
        &[("x", &samples)],
        n + 3,
        config,
        CycleResources::default(),
    )?;
    let y = system.output_species("y")?;
    let terms = stored_value_terms(system.crn(), y);
    let trace = run.trace();
    let series: Vec<f64> = (0..trace.len())
        .map(|i| {
            terms
                .iter()
                .map(|&(s, w)| w * trace.state(i)[s.index()])
                .sum()
        })
        .collect();
    Ok(crossings(trace.times(), &series, 0.95 * x)
        .first()
        .map(|c| c.time))
}

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let quick = ctx.quick;
    let mut report = Report::new("e9", "clocked vs self-timed latency");
    let lengths: Vec<usize> = if quick { vec![1, 2] } else { vec![1, 2, 4, 6] };
    let x = 80.0;

    // one cell per chain length: the self-timed measurement and the
    // clocked reference share the cell's budget meter and metrics sink
    let jobs: Vec<SweepJob<'_, (f64, Option<f64>)>> = lengths
        .iter()
        .map(|&n| {
            SweepJob::new(format!("chain n={n}"), move |job| {
                let hook = job.step_hook();
                let sink = Cell::new(SimMetrics::default());
                let pipe = AsyncPipeline::build(SchemeConfig::default(), &vec![HopOp::Identity; n])
                    .map_err(sync_job_error)?;
                let async_config = MeasureConfig {
                    t_end: 600.0,
                    step_hook: Some(&hook),
                    metrics: Some(&sink),
                    ..MeasureConfig::default()
                };
                let async_result = pipe.measure_latency(x, &async_config);
                let sync_config = RunConfig {
                    step_hook: Some(&hook),
                    metrics: Some(&sink),
                    ..RunConfig::default()
                };
                let sync_result = match async_result {
                    Ok(_) => sync_latency(n, x, &sync_config),
                    Err(_) => Ok(None), // unused; the async error returns below
                };
                crate::record_sim_metrics(job, sink.get());
                let async_t95 = async_result.map_err(sync_job_error)?.t95;
                let clocked = sync_result.map_err(sync_job_error)?;
                Ok((async_t95, clocked))
            })
        })
        .collect();
    let out = run_sweep(&jobs, &ctx.sweep_options());
    ctx.persist_summary("e9", &out.summary);

    report.line(format!(
        "latency to deliver a quantity of {x} through n elements"
    ));
    report.line("   n | self-timed t95 | clocked t95 | ratio".to_owned());
    let mut last_ratio = f64::NAN;
    for (cell, &n) in out.cells.iter().zip(&lengths) {
        match cell.value() {
            Some(&(async_t95, Some(s))) => {
                last_ratio = s / async_t95;
                report.line(format!(
                    "{n:4} | {async_t95:14.2} | {s:11.2} | {last_ratio:5.2}"
                ));
            }
            Some(&(async_t95, None)) => {
                report.line(format!("{n:4} | {async_t95:14.2} |           — |"));
            }
            None => report.line(format!(
                "{n:4} | failed: {}",
                cell.detail().unwrap_or("unknown")
            )),
        }
    }
    report.metric(
        "clocked/self-timed latency ratio (longest chain)",
        last_ratio,
    );
    report.line(
        "expected: the self-timed chain wins latency; the clocked design buys global cycle alignment instead"
            .to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn self_timed_is_faster() {
        let report = super::run(&crate::ExpCtx::quick());
        let ratio = report
            .metric_value("clocked/self-timed latency ratio (longest chain)")
            .unwrap();
        assert!(ratio.is_finite() && ratio > 0.8, "{report}");
    }

    #[test]
    fn parallel_report_matches_serial() {
        let serial = super::run(&crate::ExpCtx::quick().with_jobs(1));
        let parallel = super::run(&crate::ExpCtx::quick().with_jobs(4));
        assert_eq!(serial.to_string(), parallel.to_string());
    }
}
