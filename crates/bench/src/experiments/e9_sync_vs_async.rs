//! E9 — clocked vs self-timed transfer latency: the trade the two sibling
//! papers stake out. A clocked design pays a full phase rotation per cycle
//! whether or not data moves; a self-timed chain advances exactly as fast
//! as its own occupancy allows.
//!
//! Expected shape: both scale linearly in chain length; the self-timed
//! chain's latency per element is smaller, because the clocked design
//! paces every hop by the (token-sized) clock rotation.

use crate::{ExpCtx, Report};
use molseq_async::{AsyncPipeline, HopOp, MeasureConfig};
use molseq_kinetics::crossings;
use molseq_sync::{
    run_cycles, stored_value_terms, ClockSpec, RunConfig, SchemeConfig, SyncCircuit,
};

/// Latency of a value through `n` clocked registers, measured from the
/// trace: time at which the output register first holds 95% of the value.
fn sync_latency(n: usize, x: f64) -> Option<f64> {
    let mut circuit = SyncCircuit::new(ClockSpec::default());
    let input = circuit.input("x");
    let mut node = input;
    for i in 0..n {
        node = circuit.delay(&format!("d{i}"), node);
    }
    circuit.output("y", node);
    let system = circuit.compile().ok()?;
    let samples = vec![x];
    let run = run_cycles(&system, &[("x", &samples)], n + 3, &RunConfig::default()).ok()?;
    let y = system.output_species("y").ok()?;
    let terms = stored_value_terms(system.crn(), y);
    let trace = run.trace();
    let series: Vec<f64> = (0..trace.len())
        .map(|i| {
            terms
                .iter()
                .map(|&(s, w)| w * trace.state(i)[s.index()])
                .sum()
        })
        .collect();
    crossings(trace.times(), &series, 0.95 * x)
        .first()
        .map(|c| c.time)
}

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let quick = ctx.quick;
    let mut report = Report::new("e9", "clocked vs self-timed latency");
    let lengths: Vec<usize> = if quick { vec![1, 2] } else { vec![1, 2, 4, 6] };
    let x = 80.0;

    report.line(format!(
        "latency to deliver a quantity of {x} through n elements"
    ));
    report.line("   n | self-timed t95 | clocked t95 | ratio".to_owned());
    let mut last_ratio = f64::NAN;
    for &n in &lengths {
        let pipe = AsyncPipeline::build(SchemeConfig::default(), &vec![HopOp::Identity; n])
            .expect("pipeline");
        let async_latency = pipe
            .measure_latency(
                x,
                &MeasureConfig {
                    t_end: 600.0,
                    ..MeasureConfig::default()
                },
            )
            .expect("async run")
            .t95;
        let sync_latency = sync_latency(n, x);
        match sync_latency {
            Some(s) => {
                last_ratio = s / async_latency;
                report.line(format!(
                    "{n:4} | {async_latency:14.2} | {s:11.2} | {last_ratio:5.2}"
                ));
            }
            None => report.line(format!("{n:4} | {async_latency:14.2} |           — |")),
        }
    }
    report.metric(
        "clocked/self-timed latency ratio (longest chain)",
        last_ratio,
    );
    report.line(
        "expected: the self-timed chain wins latency; the clocked design buys global cycle alignment instead"
            .to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn self_timed_is_faster() {
        let report = super::run(&crate::ExpCtx::quick());
        let ratio = report
            .metric_value("clocked/self-timed latency ratio (longest chain)")
            .unwrap();
        assert!(ratio.is_finite() && ratio > 0.8, "{report}");
    }
}
