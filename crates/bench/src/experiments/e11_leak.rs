//! E11 — strand-displacement leak robustness. Real DSD circuits leak:
//! gate/translator fuel pairs occasionally fire without a trigger,
//! producing output from nothing. This experiment sweeps the leak rate on
//! the compiled combinational average `y = (a + b)/2` and measures how far
//! the computed answer drifts.
//!
//! Expected shape: the error grows linearly with the leak rate **and
//! quadratically with the fuel pool** (leak flux ∝ leak·C²·t, since every
//! gate/translator pair is a collision candidate), while the intended
//! computation only needs the pool to dominate the signals. The sweep
//! quantifies the strand-purity budget a wet-lab build would need, and the
//! fuel panel shows the countermeasure: smaller pools buy quadratic leak
//! relief.
//!
//! Each leak/fuel level is one sweep cell on the [`molseq_sweep`] engine.
//! The DSD network differs per cell (leak reactions are part of the
//! compilation), so there is no compile-once reuse here — what the engine
//! buys instead is parallelism plus fault isolation: a diverging stiff
//! integration at an extreme leak is a failed cell, not a dead report.

use crate::{sim_job_error, ExpCtx, Report};
use molseq_crn::{Crn, RateAssignment};
use molseq_dsd::{DsdParams, DsdSystem};
use molseq_kinetics::{CompiledCrn, OdeOptions, SimMetrics, SimSpec, Simulation};
use molseq_modules::{add, halve};
use molseq_sweep::{run_sweep, JobCtx, JobError, SweepJob};
use std::cell::Cell;

/// Builds the abstract average program and its expected output.
fn average_program() -> (Crn, [f64; 4], f64) {
    let mut crn = Crn::new();
    let a = crn.species("a");
    let b = crn.species("b");
    let s = crn.species("s");
    let y = crn.species("y");
    add(&mut crn, &[a, b], s).expect("add");
    halve(&mut crn, s, y).expect("halve");
    let init = [30.0, 14.0, 0.0, 0.0];
    let expected = (init[a.index()] + init[b.index()]) / 2.0;
    (crn, init, expected)
}

/// Runs the compiled program at one leak rate and fuel level; returns the
/// output error.
fn error_at_leak(leak: f64, fuel: f64, t_end: f64, job: &JobCtx) -> Result<f64, JobError> {
    let (formal, init, expected) = average_program();
    let y = formal.find_species("y").expect("exists");
    let params = DsdParams {
        leak,
        fuel,
        ..DsdParams::default()
    };
    let dsd = DsdSystem::compile(&formal, RateAssignment::default(), &params)
        .map_err(JobError::failed)?;
    let hook = job.step_hook();
    let sink = Cell::new(SimMetrics::default());
    let opts = OdeOptions::default()
        .with_t_end(t_end)
        .with_record_interval(t_end / 50.0)
        .with_step_hook(&hook)
        .with_metrics(&sink);
    let compiled = CompiledCrn::new(dsd.crn(), &SimSpec::default());
    let result = Simulation::new(dsd.crn(), &compiled)
        .init(&dsd.initial_state(&init))
        .options(opts)
        .run();
    crate::record_sim_metrics(job, sink.get());
    let trace = result.map_err(sim_job_error)?;
    let fin = trace.final_state();
    let measured: f64 = dsd.apparent(y).iter().map(|s| fin[s.index()]).sum();
    Ok((measured - expected).abs())
}

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let mut report = Report::new("e11", "strand-displacement leak robustness");
    let t_end = if ctx.quick { 30.0 } else { 60.0 };
    let default_fuel = DsdParams::default().fuel;
    let leaks: Vec<f64> = if ctx.quick {
        vec![0.0, 1e-11, 1e-9]
    } else {
        vec![0.0, 1e-13, 1e-12, 1e-11, 1e-10, 1e-9, 1e-8]
    };

    let leak_jobs: Vec<SweepJob<'_, f64>> = leaks
        .iter()
        .map(|&leak| {
            SweepJob::new(format!("leak={leak:e}"), move |job| {
                error_at_leak(leak, default_fuel, t_end, job)
            })
        })
        .collect();
    let leak_out = run_sweep(&leak_jobs, &ctx.sweep_options());
    ctx.persist_summary("e11-leak", &leak_out.summary);

    report.line(format!(
        "combinational average y = (30 + 14)/2 compiled to DSD (fuel C = {default_fuel}); output error vs leak rate (t = {t_end})"
    ));
    report.line("leak rate | leak/q_max | |error| (y = 22) | % of answer".to_owned());
    let mut clean_error = f64::NAN;
    let mut tolerance_boundary = f64::NAN;
    for (cell, &leak) in leak_out.cells.iter().zip(&leaks) {
        let Some(&err) = cell.value() else {
            let detail = cell.detail().unwrap_or("unknown failure");
            report.line(format!("{leak:9.0e} |  — cell failed: {detail}"));
            continue;
        };
        report.line(format!(
            "{leak:9.0e} | {:10.0e} | {err:16.4} | {:8.2}%",
            leak / DsdParams::default().q_max,
            err / 22.0 * 100.0
        ));
        if leak == 0.0 {
            clean_error = err;
        }
        if tolerance_boundary.is_nan() && leak > 0.0 && err / 22.0 > 0.05 {
            tolerance_boundary = leak;
        }
    }
    report.metric("error without leak", clean_error);
    if tolerance_boundary.is_nan() {
        report.line("  error never exceeded 5% within the swept range".to_owned());
    } else {
        report.metric("leak rate where error exceeds 5%", tolerance_boundary);
    }

    // panel 2: leak flux ∝ fuel² — smaller pools buy quadratic relief
    let leak = 1e-9;
    let fuels: Vec<f64> = if ctx.quick {
        vec![1_000.0, 10_000.0]
    } else {
        vec![300.0, 1_000.0, 3_000.0, 10_000.0]
    };
    let fuel_jobs: Vec<SweepJob<'_, f64>> = fuels
        .iter()
        .map(|&fuel| {
            SweepJob::new(format!("fuel={fuel}"), move |job| {
                error_at_leak(leak, fuel, t_end, job)
            })
        })
        .collect();
    let fuel_out = run_sweep(&fuel_jobs, &ctx.sweep_options());
    ctx.persist_summary("e11-fuel", &fuel_out.summary);

    report.line(format!("error vs fuel pool at leak = {leak:.0e}:"));
    report.line("   fuel C | |error|".to_owned());
    let mut errors = Vec::new();
    for (cell, &fuel) in fuel_out.cells.iter().zip(&fuels) {
        let Some(&err) = cell.value() else {
            let detail = cell.detail().unwrap_or("unknown failure");
            report.line(format!("{fuel:9.0} |  — cell failed: {detail}"));
            continue;
        };
        report.line(format!("{fuel:9.0} | {err:8.4}"));
        errors.push(err);
    }
    if errors.len() >= 2 {
        let first = errors[0].max(1e-9);
        let last = *errors.last().expect("nonempty");
        report.metric(
            "leak error growth for 10x fuel (expect ~100x)",
            last / first / (fuels[fuels.len() - 1] / fuels[0] / 10.0).powi(2),
        );
    }
    report.line(
        "expected: error ∝ leak·C²·t — purity requirements tighten quadratically with the fuel pool"
            .to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    use crate::ExpCtx;

    #[test]
    fn clean_compilation_is_accurate_and_leak_hurts() {
        let report = super::run(&ExpCtx::quick());
        let clean = report.metric_value("error without leak").unwrap();
        assert!(clean < 1.0, "{report}");
        let fuel = molseq_dsd::DsdParams::default().fuel;
        let ctx = molseq_sweep::JobCtx::new_for_test(0, 1, molseq_sweep::JobBudget::unlimited());
        let large_leak_err = super::error_at_leak(1e-9, fuel, 30.0, &ctx).unwrap();
        assert!(
            large_leak_err > clean + 0.5,
            "leak must hurt: {large_leak_err}"
        );
    }
}
