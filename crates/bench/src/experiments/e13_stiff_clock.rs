//! E13 — stiff clocked kinetics: implicit vs explicit tau-leaping.
//!
//! The absence-indicator clocks put every stochastic run in the same
//! regime: an indicator species is produced from nothing at a fast rate
//! and consumed fast by a large catalyst population, settling into a
//! quasi-steady equilibrium that fluctuates thousands of times per slow
//! clock event. The explicit Cao–Gillespie leaper must resolve each of
//! those fluctuations — its step selection is pinned to the fast pair —
//! so a fixed leap budget is exhausted long before the slow dynamics
//! finish. The implicit leaper detects the balanced reverse pair, drops
//! it from the step selection, and strides over the equilibrium on the
//! slow timescale with a damped-Newton update per leap.
//!
//! Expected shape: at every stiffness level the explicit leaper exhausts
//! the budget short of `t_end` while the implicit leaper completes, using
//! a step count orders of magnitude below the explicit one — and the time
//! the explicit leaper manages to cover shrinks in proportion to the
//! fast/slow separation while the implicit step count barely moves.
//!
//! Each stiffness level is one sweep cell running both arms back to back, so
//! the per-cell metrics carry the explicit counters (`tau_leaps`,
//! `ssa_events`) and the implicit counters (`tau_leaps_implicit`,
//! `newton_iterations`, `leap_switchovers`) side by side.

use crate::{ExpCtx, Report};
use molseq_crn::Crn;
use molseq_kinetics::{
    CompiledCrn, SimError, SimMetrics, SimSpec, Simulation, SsaOptions, State,
    TauLeapImplicitOptions, TauLeapOptions,
};
use molseq_sweep::{run_sweep, SweepJob};
use std::cell::Cell;

/// What one arm of a cell observed.
#[derive(Clone, Copy)]
struct Arm {
    /// Reached `t_end` within the leap budget.
    completed: bool,
    /// Steps the arm took: leaps (explicit or implicit) plus exact-SSA
    /// fallback events.
    steps: u64,
    /// Time reached when the arm stopped.
    final_time: f64,
}

/// The stiff clocked motif at production rate `k_fast`: the indicator
/// `R` is produced from nothing and consumed fast by the catalyst pool
/// `X` (a structurally reversible pair at quasi-steady state around
/// `R ≈ k_fast / (100 · X)`) while `X` drains into `Y` on the slow
/// timescale. Raising `k_fast` raises the equilibrium churn — the
/// stiffness — without moving the slow dynamics at all.
pub(crate) fn stiff_clock(k_fast: f64) -> (Crn, State) {
    let crn: Crn = format!("0 -> R @{k_fast}\nR + X -> X @100\nX -> Y @0.01")
        .parse()
        .expect("motif parses");
    let x = crn.find_species("X").expect("exists");
    let mut init = State::new(&crn);
    init.set(x, 100.0);
    (crn, init)
}

fn total_steps(m: &SimMetrics) -> u64 {
    m.tau_leaps + m.tau_leaps_implicit + m.ssa_events
}

/// Runs one leaper arm; `implicit` chooses the method via the options
/// genre. Budget exhaustion is an expected outcome, not a cell failure.
fn run_arm(
    crn: &Crn,
    compiled: &CompiledCrn,
    init: &State,
    budget: usize,
    t_end: f64,
    implicit: bool,
) -> (Arm, SimMetrics) {
    let sink = Cell::new(SimMetrics::default());
    let base = TauLeapOptions {
        base: SsaOptions::default()
            .with_t_end(t_end)
            .with_seed(13)
            .with_max_events(budget)
            .with_metrics(&sink),
        ..TauLeapOptions::default()
    };
    let sim = Simulation::new(crn, compiled).init(init);
    let result = if implicit {
        sim.options(TauLeapImplicitOptions {
            base,
            ..TauLeapImplicitOptions::default()
        })
        .run()
    } else {
        sim.options(base).run()
    };
    let m = sink.get();
    let completed = match result {
        Ok(_) => true,
        Err(SimError::StepLimitExceeded { .. }) => false,
        Err(e) => panic!("stiff clock must only fail by budget: {e}"),
    };
    (
        Arm {
            completed,
            steps: total_steps(&m),
            final_time: m.final_time,
        },
        m,
    )
}

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let mut report = Report::new(
        "e13",
        "stiff clocked kinetics: implicit vs explicit tau-leaping",
    );
    let budget = 5_000usize;
    let t_end = 10.0;
    let rates: Vec<f64> = if ctx.quick {
        vec![1e4]
    } else {
        vec![1e4, 1e5, 1e6]
    };

    let jobs: Vec<SweepJob<'_, (Arm, Arm)>> = rates
        .iter()
        .map(|&k_fast| {
            SweepJob::infallible(format!("k_fast={k_fast:e}"), move |job| {
                let (crn, init) = stiff_clock(k_fast);
                let compiled = CompiledCrn::new(&crn, &SimSpec::default());
                let (explicit, m_ex) = run_arm(&crn, &compiled, &init, budget, t_end, false);
                let (implicit, m_im) = run_arm(&crn, &compiled, &init, budget, t_end, true);
                let mut combined = m_ex;
                combined.absorb(&m_im);
                crate::record_sim_metrics(job, combined);
                (explicit, implicit)
            })
        })
        .collect();
    let out = run_sweep(&jobs, &ctx.sweep_options());
    ctx.persist_summary("e13", &out.summary);

    report.line(format!(
        "stiff motif (0 -> R @k_fast; R + X -> X @100; X -> Y @0.01), X(0) = 100, leap budget {budget}, t = 0..{t_end}"
    ));
    report.line(
        "  k_fast | explicit steps | reached t | implicit steps | reached t | step ratio"
            .to_owned(),
    );
    let mut last_ratio = f64::NAN;
    let mut implicit_completed = 0usize;
    let mut explicit_exhausted = 0usize;
    let mut last_implicit_steps = f64::NAN;
    for (cell, &k_fast) in out.cells.iter().zip(&rates) {
        let &(ex, im) = cell.value().expect("infallible cell");
        last_ratio = ex.steps as f64 / im.steps.max(1) as f64;
        report.line(format!(
            "{k_fast:8.0e} | {:14} | {:9.3} | {:14} | {:9.3} | {last_ratio:10.1}",
            ex.steps, ex.final_time, im.steps, im.final_time
        ));
        implicit_completed += usize::from(im.completed);
        explicit_exhausted += usize::from(!ex.completed);
        last_implicit_steps = im.steps as f64;
    }
    report.metric(
        "explicit runs exhausting the budget",
        explicit_exhausted as f64,
    );
    report.metric(
        "implicit runs completing within budget",
        implicit_completed as f64,
    );
    report.metric("implicit steps (stiffest cell)", last_implicit_steps);
    report.metric("explicit/implicit step ratio", last_ratio);
    report.line(
        "expected: the explicit leaper burns its whole budget resolving the fast equilibrium; the implicit leaper strides over it and finishes in orders of magnitude fewer steps"
            .to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    use crate::ExpCtx;

    #[test]
    fn implicit_leaper_beats_explicit_on_the_stiff_clock() {
        let report = super::run(&ExpCtx::quick());
        let exhausted = report
            .metric_value("explicit runs exhausting the budget")
            .unwrap();
        let completed = report
            .metric_value("implicit runs completing within budget")
            .unwrap();
        assert_eq!(exhausted, 1.0, "{report}");
        assert_eq!(completed, 1.0, "{report}");
        let ratio = report.metric_value("explicit/implicit step ratio").unwrap();
        assert!(ratio >= 10.0, "implicit must be >=10x cheaper: {report}");
    }

    #[test]
    fn parallel_report_matches_serial() {
        let serial = super::run(&ExpCtx::quick().with_jobs(1));
        let parallel = super::run(&ExpCtx::quick().with_jobs(4));
        assert_eq!(serial.to_string(), parallel.to_string());
    }
}
