//! E4 — the binary counter: injected pulses are counted in binary across
//! the bit registers, carries rippling one bit per cycle.
//!
//! Expected shape: after the pulses stop and the carries settle, the bits
//! encode the number of pulses exactly.

use crate::{ExpCtx, Report};
use molseq_sync::{drive_cycles, BinaryCounter, ClockSpec, CycleResources, RunConfig};

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let quick = ctx.quick;
    let mut report = Report::new("e4", "binary counter");
    let bits = if quick { 2 } else { 3 };
    let pulses: Vec<bool> = if quick {
        vec![true, true, true, false, false]
    } else {
        vec![true, true, true, true, true, false, false, false]
    };
    let expected: u32 = pulses.iter().filter(|&&p| p).count() as u32;

    let counter = BinaryCounter::build(bits, 60.0, ClockSpec::default()).expect("valid counter");
    let samples = counter.pulse_train(&pulses);
    let cycles = samples.len() + 1;
    let run = drive_cycles(
        counter.system(),
        &[("pulse", &samples)],
        cycles,
        &RunConfig::default(),
        CycleResources::default(),
    )
    .expect("counter runs");

    report.line(format!(
        "{bits}-bit ripple counter, amplitude 60, {} pulses; {} species, {} reactions",
        expected,
        counter.system().stats().species,
        counter.system().stats().reactions
    ));
    let mut header = "cycle | pulse |".to_owned();
    for i in 0..bits {
        header.push_str(&format!("      b{i} |"));
    }
    header.push_str(" decoded");
    report.line(header);
    for k in 0..run.cycles() {
        let mut row = format!(
            "{k:5} | {:5} |",
            if pulses.get(k).copied().unwrap_or(false) {
                "yes"
            } else {
                ""
            }
        );
        for i in 0..bits {
            row.push_str(&format!(
                " {:7.2} |",
                run.register_series(&format!("b{i}")).expect("bit exists")[k]
            ));
        }
        row.push_str(&format!(
            " {:7}",
            counter.decode(&run, k).expect("cycle in range")
        ));
        report.line(row);
    }

    let final_count = counter.decode(&run, run.cycles() - 1).expect("last cycle");
    report.metric("final count", f64::from(final_count));
    report.metric("expected count", f64::from(expected));
    report.line(
        "expected: decoded value settles on the pulse count after the carries ripple".to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn counter_counts() {
        let report = super::run(&crate::ExpCtx::quick());
        assert_eq!(
            report.metric_value("final count"),
            report.metric_value("expected count"),
            "{report}"
        );
    }
}
