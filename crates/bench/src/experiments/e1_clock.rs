//! E1 — the chemical clock: sustained, non-overlapping three-phase
//! oscillation (the paper's first figure).
//!
//! Expected shape: the three phase species take turns holding (nearly all
//! of) the token; the period is stable across cycles; no two phases are
//! simultaneously high.

use crate::{ExpCtx, Report};
use molseq_kinetics::{
    crossings, estimate_period, render_species, CompiledCrn, Direction, OdeOptions, SimSpec,
    Simulation,
};
use molseq_sync::{Clock, SchemeConfig};

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let quick = ctx.quick;
    let mut report = Report::new("e1", "chemical clock oscillation");
    let token = 100.0;
    let t_end = if quick { 30.0 } else { 120.0 };
    let clock = Clock::build(SchemeConfig::default(), token).expect("valid clock");
    let compiled = CompiledCrn::new(clock.crn(), &SimSpec::default());
    let trace = Simulation::new(clock.crn(), &compiled)
        .init(&clock.initial_state())
        .options(
            OdeOptions::default()
                .with_t_end(t_end)
                .with_record_interval(0.02),
        )
        .run()
        .expect("clock simulates");

    report.line(format!(
        "one-element ring, token = {token}, k_fast = 1000, k_slow = 1, t = 0..{t_end}"
    ));
    report.line(render_species(
        &trace,
        &[
            (clock.red(), "red   phase"),
            (clock.green(), "green phase"),
            (clock.blue(), "blue  phase"),
        ],
        100,
    ));

    let red = trace.series(clock.red());
    let period = estimate_period(trace.times(), &red, token / 2.0).unwrap_or(f64::NAN);
    report.metric("period [time units]", period);

    // period stability: coefficient of variation of cycle lengths
    let ups: Vec<f64> = crossings(trace.times(), &red, token / 2.0)
        .into_iter()
        .filter(|c| c.direction == Direction::Up)
        .map(|c| c.time)
        .collect();
    if ups.len() >= 3 {
        let gaps: Vec<f64> = ups.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        report.metric("period jitter (CV)", var.sqrt() / mean);
    }

    // non-overlap: worst-case second-highest phase at any sample
    let mut worst_second = 0.0f64;
    for i in 0..trace.len() {
        let s = trace.state(i);
        let mut highs = [
            s[clock.red().index()],
            s[clock.green().index()],
            s[clock.blue().index()],
        ];
        highs.sort_by(f64::total_cmp);
        worst_second = worst_second.max(highs[1]);
    }
    report.metric(
        "worst overlap (second phase, % of token)",
        worst_second / token * 100.0,
    );
    report.line("expected: stable period, second phase never near the token level".to_owned());
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn clock_report_has_a_period() {
        let report = super::run(&crate::ExpCtx::quick());
        let period = report.metric_value("period [time units]").unwrap();
        assert!(
            period.is_finite() && period > 0.5 && period < 50.0,
            "{period}"
        );
        let overlap = report
            .metric_value("worst overlap (second phase, % of token)")
            .unwrap();
        assert!(overlap < 50.0, "{overlap}");
    }
}
