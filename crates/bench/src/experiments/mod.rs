//! The experiment implementations. Each module exposes
//! `run(quick: bool) -> Report`; `quick` trims the workload for use inside
//! timing loops.

pub mod a1_sharpeners;
pub mod a2_coupling;
pub mod e10_ssa;
pub mod e11_leak;
pub mod e12_frequency;
pub mod e13_stiff_clock;
pub mod e14_hybrid;
pub mod e1_clock;
pub mod e2_delay_chain;
pub mod e3_moving_average;
pub mod e4_counter;
pub mod e5_costs;
pub mod e6_rate_ratio;
pub mod e7_rate_jitter;
pub mod e8_dsd;
pub mod e9_sync_vs_async;
