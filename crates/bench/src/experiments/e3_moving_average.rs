//! E3 — the moving-average filter `y(n) = (x(n) + x(n−1)) / 2`, the
//! paper's running DSP example.
//!
//! Expected shape: the molecular output tracks the ideal filter sample by
//! sample, with errors a small fraction of the signal amplitude,
//! independent of the input pattern.

use crate::{ExpCtx, Report};
use molseq_dsp::{moving_average, rmse};
use molseq_sync::{ClockSpec, RunConfig};

/// The input stream used by the figure.
pub fn input_stream(quick: bool) -> Vec<f64> {
    if quick {
        vec![10.0, 50.0, 10.0, 80.0]
    } else {
        vec![
            10.0, 50.0, 10.0, 50.0, 10.0, 80.0, 80.0, 80.0, 20.0, 20.0, 20.0, 60.0, 0.0, 60.0,
            30.0, 30.0,
        ]
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let quick = ctx.quick;
    let mut report = Report::new("e3", "moving-average filter");
    let filter = moving_average(2, ClockSpec::default()).expect("valid filter");
    let samples = input_stream(quick);
    let measured = filter
        .respond_with(&samples, &RunConfig::default(), None)
        .expect("filter runs");
    let ideal = filter.ideal_response(&samples);

    report.line(format!(
        "y(n) = (x(n) + x(n-1)) / 2 over {} samples; {} species, {} reactions",
        samples.len(),
        filter.system().stats().species,
        filter.system().stats().reactions
    ));
    report.line("    n |    x(n) | molecular | ideal |  error".to_owned());
    for n in 0..samples.len() {
        report.line(format!(
            "{n:5} | {:7.2} | {:9.3} | {:5.1} | {:+7.3}",
            samples[n],
            measured[n],
            ideal[n],
            measured[n] - ideal[n]
        ));
    }
    report.metric("RMS error", rmse(&measured, &ideal));
    let max_err = measured
        .iter()
        .zip(&ideal)
        .map(|(m, i)| (m - i).abs())
        .fold(0.0f64, f64::max);
    report.metric("max |error|", max_err);
    report.line(
        "expected: molecular output tracks the ideal filter within ~2% of amplitude".to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn filter_tracks_ideal() {
        let report = super::run(&crate::ExpCtx::quick());
        let rms = report.metric_value("RMS error").unwrap();
        assert!(rms < 2.0, "rms = {rms}");
    }
}
