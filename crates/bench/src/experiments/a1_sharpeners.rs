//! A1 — ablation: the autocatalytic sharpeners (equations (2)–(3)).
//!
//! Expected shape (and the reproduction's sharpest finding): the feedback
//! is *structural*, not an optimization. With it, a transfer completes
//! crisply in a fraction of a time unit. Without it, every phase leaves a
//! tail; the tails end up occupying all three color categories at once,
//! each one suppressing the indicator the others need, and the system
//! settles into an equilibrium crawl that never completes.

use crate::{ExpCtx, Report};
use molseq_kinetics::{crossings, CompiledCrn, OdeOptions, SimSpec, Simulation, StepHook};
use molseq_sweep::{run_sweep, SweepJob};
use molseq_sync::{stored_value_terms, DelayChain, SchemeConfig};

struct Outcome {
    /// fraction of the quantity delivered by the end of the horizon
    completion: f64,
    /// 10–90% rise time of the output (∞ if never reached)
    rise: f64,
}

fn evaluate(
    config: SchemeConfig,
    quantity: f64,
    t_end: f64,
    hook: Option<StepHook<'_>>,
) -> Outcome {
    let chain = DelayChain::build(config, 1).expect("chain");
    let init = chain.initial_state(quantity, &[0.0]).expect("state");
    let mut opts = OdeOptions::default()
        .with_t_end(t_end)
        .with_record_interval(0.05);
    if let Some(hook) = hook {
        opts = opts.with_step_hook(hook);
    }
    let compiled = CompiledCrn::new(chain.crn(), &SimSpec::default());
    let trace = Simulation::new(chain.crn(), &compiled)
        .init(&init)
        .options(opts)
        .run()
        .expect("simulates");
    let terms = stored_value_terms(chain.crn(), chain.output());
    let series: Vec<f64> = (0..trace.len())
        .map(|i| {
            terms
                .iter()
                .map(|&(s, w)| w * trace.state(i)[s.index()])
                .sum()
        })
        .collect();
    let cross_at = |level: f64| {
        crossings(trace.times(), &series, level)
            .first()
            .map_or(f64::INFINITY, |c| c.time)
    };
    Outcome {
        completion: series.last().expect("nonempty") / quantity,
        rise: cross_at(0.9 * quantity) - cross_at(0.1 * quantity),
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let mut report = Report::new("a1", "ablation: sharpeners");
    let quantity = 30.0;
    let t_end = if ctx.quick { 300.0 } else { 600.0 };

    // the two ablation arms are independent: run them as sweep cells
    let arms = [
        ("with sharpeners", SchemeConfig::default()),
        (
            "without sharpeners",
            SchemeConfig {
                sharpeners: false,
                full_coupling: false,
            },
        ),
    ];
    let jobs: Vec<SweepJob<'_, Outcome>> = arms
        .iter()
        .map(|&(label, config)| {
            SweepJob::infallible(label, move |job| {
                let hook = job.step_hook();
                evaluate(config, quantity, t_end, Some(&hook))
            })
        })
        .collect();
    let out = run_sweep(&jobs, &ctx.sweep_options());
    ctx.persist_summary("a1", &out.summary);
    let with = out.cells[0].value().expect("arm simulates");
    let without = out.cells[1].value().expect("arm simulates");

    report.line(format!(
        "one delay element, quantity {quantity}, horizon {t_end} time units"
    ));
    report.line(format!(
        "with sharpeners:    delivered {:6.1}%, 10-90% rise {:.3}",
        with.completion * 100.0,
        with.rise
    ));
    report.line(format!(
        "without sharpeners: delivered {:6.1}%, 10-90% rise {}",
        without.completion * 100.0,
        if without.rise.is_finite() {
            format!("{:.3}", without.rise)
        } else {
            "never".to_owned()
        }
    ));
    report.metric("completion with sharpeners", with.completion);
    report.metric("completion without sharpeners", without.completion);
    report.metric("rise time with sharpeners", with.rise);
    report.line(
        "expected: without feedback, phase tails occupy all three categories, suppress every indicator and gridlock the rotation"
            .to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    use crate::ExpCtx;

    #[test]
    fn sharpeners_are_structural() {
        let report = super::run(&ExpCtx::quick());
        let with = report.metric_value("completion with sharpeners").unwrap();
        let without = report
            .metric_value("completion without sharpeners")
            .unwrap();
        assert!(with > 0.98, "{report}");
        assert!(without < 0.6, "{report}");
    }
}
