//! E6 — the rate-ratio robustness sweep: the headline claim. The
//! computation must be exact for *any* assignment with `k_fast ≫ k_slow`;
//! as the separation shrinks the phases start to overlap and the answers
//! drift.
//!
//! Expected shape: error collapses once `k_fast/k_slow` exceeds ~10²; at
//! ratio 10 the scheme degrades visibly (indicators leak while categories
//! still hold quantity, so transfers fire out of phase).
//!
//! The sweep runs on the [`molseq_sweep`] engine: the filter network is
//! compiled once and re-bound per ratio, and the cells run in parallel
//! with results in ratio order.

use crate::{filter_grid_units, ExpCtx, FilterGridCell, Report};
use molseq_crn::RateAssignment;
use molseq_dsp::{moving_average, rmse};
use molseq_kinetics::{CompiledCrn, SimSpec};
use molseq_sweep::run_units;
use molseq_sync::ClockSpec;

/// The ratios swept by the figure.
pub fn ratios(quick: bool) -> Vec<f64> {
    if quick {
        vec![10.0, 1_000.0]
    } else {
        vec![10.0, 30.0, 100.0, 300.0, 1_000.0, 10_000.0, 100_000.0]
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let mut report = Report::new("e6", "rate-ratio robustness");
    let samples: Vec<f64> = if ctx.quick {
        vec![10.0, 50.0, 80.0]
    } else {
        vec![10.0, 50.0, 10.0, 80.0, 80.0, 20.0]
    };
    let filter = moving_average(2, ClockSpec::default()).expect("filter");
    let ideal = filter.ideal_response(&samples);
    // compile once; every sweep cell rebinds the rates it needs
    let base = CompiledCrn::new(filter.system().crn(), &SimSpec::default());

    let swept = ratios(ctx.quick);
    let specs: Vec<FilterGridCell> = swept
        .iter()
        .map(|&ratio| {
            (
                format!("ratio={ratio}"),
                SimSpec::new(RateAssignment::from_ratio(ratio)),
                // low separation makes phases long and mushy: allow more
                // time
                if ratio < 100.0 { 120.0 } else { 45.0 },
            )
        })
        .collect();
    let ideal_ref = &ideal;
    let units = filter_grid_units(
        &filter,
        &base,
        &samples,
        &specs,
        ctx.sweep_options().batch_width(),
        move |_job, measured| {
            let rms = rmse(&measured, ideal_ref);
            let max_err = measured
                .iter()
                .zip(ideal_ref)
                .map(|(m, i)| (m - i).abs())
                .fold(0.0f64, f64::max);
            Ok((rms, max_err))
        },
    );
    let out = run_units(&units, &ctx.sweep_options());
    ctx.persist_summary("e6", &out.summary);

    report.line("moving-average filter RMS error vs k_fast/k_slow".to_owned());
    report.line("   ratio |  RMS error | max |error| | period".to_owned());
    let mut errors = Vec::new();
    for (cell, &ratio) in out.cells.iter().zip(&swept) {
        match cell.value() {
            Some(&(rms, max_err)) => {
                report.line(format!("{ratio:8.0} | {rms:10.4} | {max_err:11.4} |"));
                errors.push((ratio, rms));
            }
            None => {
                let detail = cell.detail().unwrap_or("unknown failure");
                report.line(format!("{ratio:8.0} |      — scheme breaks down: {detail}"));
                errors.push((ratio, f64::INFINITY));
            }
        }
    }

    if let Some(&(_, rms_hi)) = errors.iter().find(|(r, _)| *r >= 1_000.0) {
        report.metric("RMS error at ratio >= 1000", rms_hi);
    }
    if let Some(&(_, rms_lo)) = errors.first() {
        report.metric(&format!("RMS error at ratio {}", errors[0].0), rms_lo);
    }
    report.line(
        "expected: error is flat and small for ratio >= ~100 and grows as the separation collapses"
            .to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    use crate::ExpCtx;

    #[test]
    fn high_separation_is_accurate() {
        let report = super::run(&ExpCtx::quick());
        let rms = report.metric_value("RMS error at ratio >= 1000").unwrap();
        assert!(rms < 2.0, "{rms}");
    }

    #[test]
    fn parallel_report_matches_serial() {
        let serial = super::run(&ExpCtx::quick().with_jobs(1));
        let parallel = super::run(&ExpCtx::quick().with_jobs(4));
        assert_eq!(serial.to_string(), parallel.to_string());
    }

    #[test]
    fn batched_report_matches_scalar() {
        let scalar = super::run(&ExpCtx::quick().with_jobs(1));
        for width in [2usize, 8] {
            let batched = super::run(&ExpCtx::quick().with_jobs(1).with_batch(width));
            assert_eq!(scalar.to_string(), batched.to_string(), "width {width}");
        }
    }
}
