//! E7 — per-reaction rate randomization: "it does not matter how fast any
//! fast reaction is relative to another". Every rate constant is
//! multiplied by an independent lognormal factor and the computed answers
//! must not move.
//!
//! Expected shape: the error stays at the unjittered baseline for σ up to
//! ~1 (a spread of e² ≈ 7.4× between ±1σ reactions).
//!
//! Every `(σ, draw)` pair is one sweep cell: the filter network is
//! compiled once and re-bound per jitter draw, and the cells run in
//! parallel on the [`molseq_sweep`] engine. Draw seeds are fixed per
//! cell (not scheduling-dependent), so the report is byte-identical at
//! any worker count.

use crate::{sync_job_error, ExpCtx, Report};
use molseq_crn::{JitterSpec, RateJitter};
use molseq_dsp::{moving_average, rmse};
use molseq_kinetics::{CompiledCrn, SimMetrics, SimSpec};
use molseq_sweep::{run_sweep, SweepJob};
use molseq_sync::{ClockSpec, RunConfig};
use std::cell::Cell;

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let mut report = Report::new("e7", "per-reaction rate jitter");
    let samples: Vec<f64> = if ctx.quick {
        vec![10.0, 60.0, 30.0]
    } else {
        vec![10.0, 50.0, 10.0, 80.0, 80.0, 20.0]
    };
    let sigmas = if ctx.quick {
        vec![0.5]
    } else {
        vec![0.25, 0.5, 1.0]
    };
    let draws: u64 = if ctx.quick { 3 } else { 10 };

    let filter = moving_average(2, ClockSpec::default()).expect("filter");
    let ideal = filter.ideal_response(&samples);
    let base = CompiledCrn::new(filter.system().crn(), &SimSpec::default());

    // one cell per (sigma, draw), flattened in presentation order
    let jobs: Vec<SweepJob<'_, f64>> = sigmas
        .iter()
        .flat_map(|&sigma| {
            let (filter, ideal, samples, base) = (&filter, &ideal, &samples, &base);
            (0..draws).map(move |seed| {
                SweepJob::new(format!("sigma={sigma} draw={seed}"), move |job| {
                    let jitter = RateJitter::sample(
                        filter.system().crn(),
                        JitterSpec::new(sigma, 1_000 + seed),
                    );
                    let spec = SimSpec::default().with_jitter(jitter);
                    let hook = job.step_hook();
                    let sink = Cell::new(SimMetrics::default());
                    let config = RunConfig {
                        spec: spec.clone(),
                        cycle_time_hint: 90.0,
                        step_hook: Some(&hook),
                        metrics: Some(&sink),
                        ..RunConfig::default()
                    };
                    let result = filter.respond_with(samples, &config, Some(&base.rebind(&spec)));
                    crate::record_sim_metrics(job, sink.get());
                    let measured = result.map_err(sync_job_error)?;
                    Ok(rmse(&measured, ideal))
                })
            })
        })
        .collect();
    let out = run_sweep(&jobs, &ctx.sweep_options());
    ctx.persist_summary("e7", &out.summary);

    report.line(format!(
        "moving-average RMS error under lognormal rate jitter ({draws} draws per sigma)"
    ));
    report.line("  sigma |   mean RMS |    max RMS | failures".to_owned());
    let mut worst_overall = 0.0f64;
    for (row, &sigma) in sigmas.iter().enumerate() {
        let cells = &out.cells[row * draws as usize..(row + 1) * draws as usize];
        let rms_values: Vec<f64> = cells.iter().filter_map(|c| c.value().copied()).collect();
        let failures = cells.len() - rms_values.len();
        let mean = rms_values.iter().sum::<f64>() / rms_values.len().max(1) as f64;
        let max = rms_values.iter().copied().fold(0.0f64, f64::max);
        worst_overall = worst_overall.max(max);
        report.line(format!(
            "{sigma:7.2} | {mean:10.4} | {max:10.4} | {failures:8}"
        ));
    }
    report.metric("worst RMS across all draws", worst_overall);
    report.line(
        "expected: errors remain a small fraction of the amplitude — the categories, not the constants, carry the design"
            .to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    use crate::ExpCtx;

    #[test]
    fn jittered_rates_stay_accurate() {
        let report = super::run(&ExpCtx::quick());
        let worst = report.metric_value("worst RMS across all draws").unwrap();
        assert!(worst < 3.0, "{worst}");
    }
}
