//! E7 — per-reaction rate randomization: "it does not matter how fast any
//! fast reaction is relative to another". Every rate constant is
//! multiplied by an independent lognormal factor and the computed answers
//! must not move.
//!
//! Expected shape: the error stays at the unjittered baseline for σ up to
//! ~1 (a spread of e² ≈ 7.4× between ±1σ reactions).

use crate::Report;
use molseq_crn::{JitterSpec, RateJitter};
use molseq_dsp::{moving_average, rmse};
use molseq_kinetics::SimSpec;
use molseq_sync::{ClockSpec, RunConfig};

/// Runs the experiment.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new("e7", "per-reaction rate jitter");
    let samples: Vec<f64> = if quick {
        vec![10.0, 60.0, 30.0]
    } else {
        vec![10.0, 50.0, 10.0, 80.0, 80.0, 20.0]
    };
    let sigmas = if quick {
        vec![0.5]
    } else {
        vec![0.25, 0.5, 1.0]
    };
    let draws = if quick { 3 } else { 10 };

    let filter = moving_average(2, ClockSpec::default()).expect("filter");
    let ideal = filter.ideal_response(&samples);

    report.line(format!(
        "moving-average RMS error under lognormal rate jitter ({draws} draws per sigma)"
    ));
    report.line("  sigma |   mean RMS |    max RMS | failures".to_owned());
    let mut worst_overall = 0.0f64;
    for &sigma in &sigmas {
        let mut rms_values = Vec::new();
        let mut failures = 0usize;
        for seed in 0..draws {
            let jitter = RateJitter::sample(
                filter.system().crn(),
                JitterSpec::new(sigma, 1_000 + seed),
            );
            let config = RunConfig {
                spec: SimSpec::default().with_jitter(jitter),
                cycle_time_hint: 90.0,
                ..RunConfig::default()
            };
            match filter.respond(&samples, &config) {
                Ok(measured) => rms_values.push(rmse(&measured, &ideal)),
                Err(_) => failures += 1,
            }
        }
        let mean = rms_values.iter().sum::<f64>() / rms_values.len().max(1) as f64;
        let max = rms_values.iter().copied().fold(0.0f64, f64::max);
        worst_overall = worst_overall.max(max);
        report.line(format!("{sigma:7.2} | {mean:10.4} | {max:10.4} | {failures:8}"));
    }
    report.metric("worst RMS across all draws", worst_overall);
    report.line(
        "expected: errors remain a small fraction of the amplitude — the categories, not the constants, carry the design"
            .to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn jittered_rates_stay_accurate() {
        let report = super::run(true);
        let worst = report.metric_value("worst RMS across all draws").unwrap();
        assert!(worst < 3.0, "{worst}");
    }
}
