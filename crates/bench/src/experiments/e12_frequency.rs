//! E12 — filter frequency response. The DSP claim behind the paper's
//! synthesis story: the molecular moving-average filter is a *filter*,
//! with the textbook magnitude response `|H(e^jω)| = |cos(ω/2)|`.
//!
//! Concentrations cannot go negative, so the probe is a DC-offset
//! sinusoid `x(n) = offset + A·cos(ω·n)` (cosine, so the Nyquist probe is
//! not sampled at its zeros); the gain is extracted with a single-bin DFT
//! over the steady cycles, which is phase-insensitive — a max−min
//! amplitude estimate would be biased low whenever the samples straddle
//! the output sinusoid's peaks.
//!
//! The filter network does not depend on the probe frequency, so it is
//! compiled once and every probe is a sweep cell driving the shared
//! [`CompiledCrn`]; the report is byte-identical at any worker count.
//!
//! Expected shape: gain ≈ 1 at DC, rolling off to 0 at the Nyquist
//! frequency (ω = π), tracking `cos(ω/2)` in between.

use crate::{sync_job_error, ExpCtx, Report};
use molseq_dsp::{moving_average, Filter};
use molseq_kinetics::{CompiledCrn, SimMetrics, SimSpec};
use molseq_sweep::{run_sweep, JobCtx, JobError, SweepJob};
use molseq_sync::{ClockSpec, RunConfig};
use std::cell::Cell;

/// Single-bin DFT magnitude of a series' tail at frequency `omega`
/// (radians per sample). The tail must cover whole periods.
fn dft_magnitude(series: &[f64], tail: usize, omega: f64) -> f64 {
    let start = series.len().saturating_sub(tail);
    let window = &series[start..];
    let (mut re, mut im) = (0.0f64, 0.0f64);
    for (k, &v) in window.iter().enumerate() {
        let phase = omega * k as f64;
        re += v * phase.cos();
        im += v * phase.sin();
    }
    (re * re + im * im).sqrt() * 2.0 / window.len() as f64
}

/// Runs one probe at `samples_per_period` against the shared compiled
/// network and returns (measured gain, theoretical gain).
fn probe(
    filter: &Filter,
    compiled: &CompiledCrn,
    samples_per_period: usize,
    quick: bool,
    job: &JobCtx,
) -> Result<(f64, f64), JobError> {
    let amplitude = 30.0;
    let offset = 40.0;
    let periods = if quick { 3 } else { 5 };
    let n = samples_per_period * periods;
    let omega = std::f64::consts::TAU / samples_per_period as f64;
    let samples: Vec<f64> = (0..n)
        .map(|k| offset + amplitude * (omega * k as f64).cos())
        .collect();

    let hook = job.step_hook();
    let sink = Cell::new(SimMetrics::default());
    let config = RunConfig {
        step_hook: Some(&hook),
        metrics: Some(&sink),
        ..RunConfig::default()
    };
    let result = filter.respond_with(&samples, &config, Some(compiled));
    crate::record_sim_metrics(job, sink.get());
    let measured_series = result.map_err(sync_job_error)?;
    // skip the first period (transient), use whole periods of the rest
    let tail = n - samples_per_period;
    let out_amp = dft_magnitude(&measured_series, tail, omega);
    let in_amp = dft_magnitude(&samples, tail, omega);
    let theory = (omega / 2.0).cos().abs();
    Ok((out_amp / in_amp, theory))
}

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let quick = ctx.quick;
    let mut report = Report::new("e12", "filter frequency response");
    let sample_counts: Vec<usize> = if quick {
        vec![8, 2]
    } else {
        vec![16, 8, 4, 3, 2]
    };

    let filter = moving_average(2, ClockSpec::default()).expect("filter builds");
    let compiled = CompiledCrn::new(filter.system().crn(), &SimSpec::default());
    let jobs: Vec<SweepJob<'_, (f64, f64)>> = sample_counts
        .iter()
        .map(|&spp| {
            let (filter, compiled) = (&filter, &compiled);
            SweepJob::new(format!("spp={spp}"), move |job| {
                probe(filter, compiled, spp, quick, job)
            })
        })
        .collect();
    let out = run_sweep(&jobs, &ctx.sweep_options());
    ctx.persist_summary("e12", &out.summary);

    report.line(
        "moving-average filter driven by offset sinusoids; gain vs normalized frequency".to_owned(),
    );
    report.line("samples/period |   ω/π | measured gain | cos(ω/2) |  error".to_owned());
    let mut worst = 0.0f64;
    for (cell, &spp) in out.cells.iter().zip(&sample_counts) {
        match cell.value() {
            Some(&(measured, theory)) => {
                let err = (measured - theory).abs();
                worst = worst.max(err);
                report.line(format!(
                    "{spp:14} | {:5.2} | {measured:13.3} | {theory:8.3} | {err:6.3}",
                    2.0 / spp as f64
                ));
            }
            None => report.line(format!("{spp:14} |   (run failed)")),
        }
    }
    report.metric("worst |gain - theory|", worst);
    report.line(
        "expected: the molecular filter matches the textbook magnitude response |cos(ω/2)| across the band"
            .to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn response_tracks_theory() {
        let report = super::run(&crate::ExpCtx::quick());
        let worst = report.metric_value("worst |gain - theory|").unwrap();
        assert!(worst < 0.12, "{report}");
    }

    #[test]
    fn parallel_report_matches_serial() {
        let serial = super::run(&crate::ExpCtx::quick().with_jobs(1));
        let parallel = super::run(&crate::ExpCtx::quick().with_jobs(4));
        assert_eq!(serial.to_string(), parallel.to_string());
    }
}
