//! E14 — the hybrid ODE/SSA integrator raced against pure SSA and the
//! implicit tau-leaper on the stiff clocked motif.
//!
//! The motif is E13's: the absence indicator `R` is produced from nothing
//! at `k_fast` and consumed fast by the catalyst pool `X`, settling into a
//! quasi-steady equilibrium `R ≈ k_fast / (100 · X)` that churns thousands
//! of times per slow `X -> Y` event. Pure SSA must draw every single
//! production/consumption event of that equilibrium — `~2 · k_fast · t`
//! events. The hybrid integrator routes the detected reverse pair into the
//! continuous subsystem and keeps only the genuinely rare `X -> Y`
//! reaction discrete, so its exact-event count collapses to the handful of
//! slow firings while the fast churn becomes a few dozen stiff ODE steps.
//!
//! The race is only meaningful at matched accuracy, so every arm is scored
//! on the same clock observable: the time-averaged indicator level over
//! the second half of the run, compared against the quasi-steady analytic
//! value `k_fast / (100 · X(0))` (the pool drains ~1% over the horizon, so
//! the analytic value is good to that order). The headline gate — asserted
//! by the in-crate test and re-checked by CI — is that the hybrid arm
//! matches pure SSA's observable while spending at least 5× (in practice
//! thousands of times) fewer exact SSA events.
//!
//! The implicit tau-leaper rides along as the PR-5 baseline: it also
//! strides over the equilibrium, but by leaping the discrete state, so its
//! indicator average is a leap-level estimate rather than an integrated
//! continuous trajectory; its error is reported for context, not gated.

use crate::{ExpCtx, Report};
use molseq_crn::{Crn, SpeciesId};
use molseq_kinetics::{
    CompiledCrn, HybridOptions, SimMetrics, SimSpec, Simulation, SsaOptions, State,
    TauLeapImplicitOptions, TauLeapOptions, Trace,
};
use molseq_sweep::{run_sweep, SweepJob};
use std::cell::Cell;

use super::e13_stiff_clock::stiff_clock;

/// Horizon short enough that resolving every SSA event stays affordable
/// (`~2 · k_fast` draws) while still covering thousands of equilibrium
/// relaxation times.
const T_END: f64 = 1.0;
/// Trace sampling grid shared by all arms: 200 samples, of which the
/// second half feed the clock observable.
const RECORD: f64 = 0.005;
/// Event budget no arm should ever hit — exhaustion is a cell failure
/// here, unlike E13 where it is the measured outcome.
const BUDGET: usize = 2_000_000;

/// What one arm of a cell observed.
#[derive(Clone, Copy)]
struct Arm {
    /// Exact SSA events the arm drew (for the hybrid arm: slow-reaction
    /// events only, by construction).
    events: u64,
    /// Continuous steps accepted (ODE or hybrid-fast), zero for pure SSA.
    fast_steps: u64,
    /// Relative error of the time-averaged indicator level against the
    /// quasi-steady analytic value.
    rel_err: f64,
}

/// Mean of the recorded samples of `species` at `t >= from` — the samples
/// sit on a uniform grid, so the plain mean is the time average.
fn tail_average(trace: &Trace, species: SpeciesId, from: f64) -> f64 {
    let series = trace.series(species);
    let picked: Vec<f64> = trace
        .times()
        .iter()
        .zip(&series)
        .filter(|(&t, _)| t >= from)
        .map(|(_, &v)| v)
        .collect();
    assert!(!picked.is_empty(), "tail window must contain samples");
    picked.iter().sum::<f64>() / picked.len() as f64
}

fn score(trace: &Trace, crn: &Crn, k_fast: f64, m: SimMetrics) -> Arm {
    let r = crn.find_species("R").expect("exists");
    let r_eq = k_fast / (100.0 * 100.0);
    let avg = tail_average(trace, r, T_END / 2.0);
    Arm {
        events: m.ssa_events,
        fast_steps: m.ode_steps_accepted,
        rel_err: (avg - r_eq).abs() / r_eq,
    }
}

/// Which integrator an arm races with.
#[derive(Clone, Copy)]
enum Method {
    PureSsa,
    Hybrid,
    ImplicitTau,
}

fn run_arm(
    crn: &Crn,
    compiled: &CompiledCrn,
    init: &State,
    k_fast: f64,
    method: Method,
) -> (Arm, SimMetrics) {
    let sink = Cell::new(SimMetrics::default());
    let sim = Simulation::new(crn, compiled).init(init);
    let ssa_base = SsaOptions::default()
        .with_t_end(T_END)
        .with_record_interval(RECORD)
        .with_seed(13)
        .with_max_events(BUDGET)
        .with_metrics(&sink);
    let trace = match method {
        Method::PureSsa => sim.options(ssa_base).run(),
        Method::Hybrid => sim
            .options(
                HybridOptions::default()
                    .with_t_end(T_END)
                    .with_record_interval(RECORD)
                    .with_seed(13)
                    .with_max_events(BUDGET)
                    .with_metrics(&sink),
            )
            .run(),
        Method::ImplicitTau => sim
            .options(TauLeapImplicitOptions {
                base: TauLeapOptions {
                    base: ssa_base,
                    ..TauLeapOptions::default()
                },
                ..TauLeapImplicitOptions::default()
            })
            .run(),
    }
    .expect("no arm may exhaust the generous budget");
    let m = sink.get();
    (score(&trace, crn, k_fast, m), m)
}

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let mut report = Report::new(
        "e14",
        "hybrid ODE/SSA vs pure SSA vs implicit tau on the stiff clock",
    );
    let rates: Vec<f64> = if ctx.quick { vec![1e4] } else { vec![1e4, 1e5] };

    let jobs: Vec<SweepJob<'_, (Arm, Arm, Arm)>> = rates
        .iter()
        .map(|&k_fast| {
            SweepJob::infallible(format!("k_fast={k_fast:e}"), move |job| {
                let (crn, init) = stiff_clock(k_fast);
                let compiled = CompiledCrn::new(&crn, &SimSpec::default());
                let (ssa, m_ssa) = run_arm(&crn, &compiled, &init, k_fast, Method::PureSsa);
                let (hybrid, m_hy) = run_arm(&crn, &compiled, &init, k_fast, Method::Hybrid);
                let (tau, m_tau) = run_arm(&crn, &compiled, &init, k_fast, Method::ImplicitTau);
                let mut combined = m_ssa;
                combined.absorb(&m_hy);
                combined.absorb(&m_tau);
                crate::record_sim_metrics(job, combined);
                (ssa, hybrid, tau)
            })
        })
        .collect();
    let out = run_sweep(&jobs, &ctx.sweep_options());
    ctx.persist_summary("e14", &out.summary);

    report.line(format!(
        "stiff motif (0 -> R @k_fast; R + X -> X @100; X -> Y @0.01), X(0) = 100, t = 0..{T_END}, shared seed 13"
    ));
    report.line(
        "  k_fast | SSA events | hybrid events | hybrid fast steps | event ratio | SSA err | hybrid err | tau err"
            .to_owned(),
    );
    let mut last_ratio = f64::NAN;
    let mut worst_err = 0.0f64;
    let mut last_events = f64::NAN;
    let mut last_hybrid_events = f64::NAN;
    for (cell, &k_fast) in out.cells.iter().zip(&rates) {
        let &(ssa, hybrid, tau) = cell.value().expect("infallible cell");
        last_ratio = ssa.events as f64 / hybrid.events.max(1) as f64;
        last_events = ssa.events as f64;
        last_hybrid_events = hybrid.events as f64;
        worst_err = worst_err.max(ssa.rel_err).max(hybrid.rel_err);
        report.line(format!(
            "{k_fast:8.0e} | {:10} | {:13} | {:17} | {last_ratio:11.0} | {:7.3} | {:10.3} | {:7.3}",
            ssa.events, hybrid.events, hybrid.fast_steps, ssa.rel_err, hybrid.rel_err, tau.rel_err
        ));
    }
    report.metric("pure SSA events (stiffest cell)", last_events);
    report.metric("hybrid SSA events (stiffest cell)", last_hybrid_events);
    report.metric("SSA/hybrid event ratio", last_ratio);
    report.metric("worst clock-observable relative error", worst_err);
    report.line(
        "expected: the hybrid arm matches pure SSA's indicator average while drawing orders of magnitude fewer exact events — the equilibrium churn lives in a few dozen stiff ODE steps"
            .to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    use crate::ExpCtx;

    #[test]
    fn hybrid_needs_far_fewer_events_than_pure_ssa_at_matched_accuracy() {
        let report = super::run(&ExpCtx::quick());
        let ratio = report.metric_value("SSA/hybrid event ratio").unwrap();
        assert!(
            ratio >= 5.0,
            "hybrid must be >=5x cheaper in events: {report}"
        );
        let err = report
            .metric_value("worst clock-observable relative error")
            .unwrap();
        assert!(
            err <= 0.35,
            "both arms must track the equilibrium: {report}"
        );
    }

    #[test]
    fn parallel_report_matches_serial() {
        let serial = super::run(&ExpCtx::quick().with_jobs(1));
        let parallel = super::run(&ExpCtx::quick().with_jobs(4));
        assert_eq!(serial.to_string(), parallel.to_string());
    }
}
