//! E8 — the DNA strand-displacement mapping: compile the sequential
//! machinery (clock, delay chain) to DSD cascades and check that the
//! behaviour survives, measuring the size and speed overhead.
//!
//! Expected shape: the DSD clock still produces sustained three-phase
//! oscillation (somewhat slower — every formal reaction became a cascade);
//! the DSD delay chain still delivers the exact quantities in order; the
//! compiled networks are ~4× larger in reactions and carry a fuel
//! complement.

use crate::{ExpCtx, Report};
use molseq_crn::RateAssignment;
use molseq_dsd::{DsdParams, DsdSystem};
use molseq_dsp::moving_average;
use molseq_kinetics::{
    estimate_period, CompiledCrn, OdeOptions, SimSpec, Simulation, State, Trace,
};
use molseq_sync::{Clock, ClockSpec, DelayChain, SchemeConfig};

fn simulate(dsd: &DsdSystem, init: &State, t_end: f64) -> Trace {
    let compiled = CompiledCrn::new(dsd.crn(), &SimSpec::default());
    Simulation::new(dsd.crn(), &compiled)
        .init(init)
        .options(
            OdeOptions::default()
                .with_t_end(t_end)
                .with_record_interval(0.05),
        )
        .run()
        .expect("DSD system simulates")
}

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let quick = ctx.quick;
    let mut report = Report::new("e8", "strand-displacement mapping");
    let params = DsdParams::default();
    let assignment = RateAssignment::default();
    let config = SchemeConfig::default();

    // 1. the chemical clock, before and after compilation
    let clock = Clock::build(config, 100.0).expect("clock");
    let formal_compiled = CompiledCrn::new(clock.crn(), &SimSpec::default());
    let formal_trace = Simulation::new(clock.crn(), &formal_compiled)
        .init(&clock.initial_state())
        .options(
            OdeOptions::default()
                .with_t_end(if quick { 30.0 } else { 60.0 })
                .with_record_interval(0.02),
        )
        .run()
        .expect("formal clock simulates");
    let formal_period = estimate_period(
        formal_trace.times(),
        &formal_trace.series(clock.red()),
        50.0,
    )
    .unwrap_or(f64::NAN);

    let dsd_clock = DsdSystem::compile(clock.crn(), assignment, &params).expect("compiles");
    let mut formal_init = vec![0.0; clock.crn().species_count()];
    formal_init[clock.red().index()] = 100.0;
    let dsd_trace = simulate(
        &dsd_clock,
        &dsd_clock.initial_state(&formal_init),
        if quick { 60.0 } else { 150.0 },
    );
    // gate binding sequesters a share of the free strand: use a lower
    // threshold to detect the oscillation
    let dsd_period = estimate_period(
        dsd_trace.times(),
        &dsd_trace.series(dsd_clock.signal(clock.red())),
        35.0,
    );
    report.line("clock: formal vs DSD".to_owned());
    report.metric("formal clock period", formal_period);
    match dsd_period {
        Some(p) => {
            report.metric("DSD clock period", p);
            report.metric("DSD slowdown factor", p / formal_period);
        }
        None => report.line("  DSD clock did not oscillate within the horizon".to_owned()),
    }

    // 2. the delay chain workload of E2, through DSD
    if !quick {
        let chain = DelayChain::build(config, 2).expect("chain");
        let formal_state = chain.initial_state(80.0, &[30.0, 55.0]).expect("state");
        let dsd_chain = DsdSystem::compile(chain.crn(), assignment, &params).expect("compiles");
        let trace = simulate(
            &dsd_chain,
            &dsd_chain.initial_state(formal_state.as_slice()),
            400.0,
        );
        // stored output = free Y strand + 2 × dimer strand
        let y = dsd_chain.signal(chain.output());
        let mut y_final = trace.final_state()[y.index()];
        let dimer_name = format!("I[{}]", chain.crn().species_name(chain.output()));
        if let Some(dimer_formal) = chain.crn().find_species(&dimer_name) {
            y_final += 2.0 * trace.final_state()[dsd_chain.signal(dimer_formal).index()];
        }
        report.line("delay chain (X=80, D1=30, D2=55) through DSD".to_owned());
        report.metric("DSD chain final Y (expect 165)", y_final);
    }

    // 3. compilation cost table
    report.line("compilation blow-up:".to_owned());
    report.line("network                  | formal sp/rx | compiled sp/rx | fuels".to_owned());
    let chain2 = DelayChain::build(config, 2).expect("chain");
    let ma = moving_average(2, ClockSpec::default()).expect("ma");
    for (name, crn) in [
        ("clock", clock.crn()),
        ("delay chain n=2", chain2.crn()),
        ("moving average (system)", ma.system().crn()),
    ] {
        let dsd = DsdSystem::compile(crn, assignment, &params).expect("compiles");
        let cost = dsd.cost();
        report.line(format!(
            "{name:24} | {:5} / {:4} | {:7} / {:5} | {:5}",
            cost.formal.0, cost.formal.1, cost.compiled.0, cost.compiled.1, cost.fuels
        ));
        if name == "moving average (system)" {
            report.metric(
                "reaction blow-up factor (moving average)",
                cost.compiled.1 as f64 / cost.formal.1 as f64,
            );
        }
    }
    report.line(
        "expected: behaviour preserved through the mapping; reactions grow ~3-4x; fuels scale with reactions"
            .to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn dsd_clock_still_ticks() {
        let report = super::run(&crate::ExpCtx::quick());
        let p = report.metric_value("DSD clock period");
        assert!(p.is_some(), "{report}");
        assert!(p.unwrap() > 0.5, "{report}");
    }
}
