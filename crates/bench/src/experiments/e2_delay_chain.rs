//! E2 — the two-delay-element chain (the companion abstract's Figure 1c):
//! crisp, ordered transfer of quantities from `X` through red, green and
//! blue types to `Y`.
//!
//! Expected shape: phases alternate; each stored value advances exactly
//! one element per rotation; `Y` fills in ordered steps (55, then +30,
//! then +80) and the final total is exact.

use crate::{ExpCtx, Report};
use molseq_kinetics::{render_species, CompiledCrn, OdeOptions, SimSpec, Simulation};
use molseq_sync::{stored_value_at, DelayChain, SchemeConfig};

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let quick = ctx.quick;
    let mut report = Report::new("e2", "delay-element chain transfer");
    let chain = DelayChain::build(SchemeConfig::default(), 2).expect("valid chain");
    let (x, d1, d2) = (80.0, 30.0, 55.0);
    let init = chain.initial_state(x, &[d1, d2]).expect("valid state");
    let t_end = if quick { 40.0 } else { 120.0 };
    let compiled = CompiledCrn::new(chain.crn(), &SimSpec::default());
    let trace = Simulation::new(chain.crn(), &compiled)
        .init(&init)
        .options(
            OdeOptions::default()
                .with_t_end(t_end)
                .with_record_interval(0.05),
        )
        .run()
        .expect("chain simulates");

    report.line(format!(
        "chain of 2 delay elements; X = {x}, D1 = {d1}, D2 = {d2} (all staged blue)"
    ));
    let [r1, g1, b1] = chain.element(0);
    let [r2, g2, b2] = chain.element(1);
    report.line(render_species(
        &trace,
        &[
            (chain.input(), "X  (B0)"),
            (r1, "R1"),
            (g1, "G1"),
            (b1, "B1"),
            (r2, "R2"),
            (g2, "G2"),
            (b2, "B2"),
            (chain.output(), "Y  (R3)"),
        ],
        100,
    ));

    let y_at = |t: f64| stored_value_at(chain.crn(), &trace, chain.output(), t);
    let y_final = y_at(t_end);
    report.metric("final Y (expect 165)", y_final);

    // ordered arrival: Y passes through the plateaus 55, 85, 165
    let plateau_hits = [d2, d2 + d1, d2 + d1 + x]
        .iter()
        .map(|&plateau| {
            trace
                .times()
                .iter()
                .any(|&t| (y_at(t) - plateau).abs() < 2.0)
        })
        .filter(|&hit| hit)
        .count();
    report.metric("ordered plateaus visited (expect 3)", plateau_hits as f64);
    report.line("expected: X, D1, D2 advance in lockstep; Y fills as 55 → 85 → 165".to_owned());
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn chain_delivers_everything_in_order() {
        let report = super::run(&crate::ExpCtx::full());
        let y = report.metric_value("final Y (expect 165)").unwrap();
        assert!((y - 165.0).abs() < 2.0, "{y}");
        let plateaus = report
            .metric_value("ordered plateaus visited (expect 3)")
            .unwrap();
        assert_eq!(plateaus, 3.0);
    }
}
