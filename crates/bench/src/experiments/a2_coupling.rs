//! A2 — ablation: self-coupled vs fully cross-coupled feedback. The
//! paper's equations couple every destination's feedback intermediate to
//! every same-phase source (`I_{G,j} + R_i → 2G_j + G_i`); this costs
//! O(n²) reactions. The default here couples each transfer only to its
//! own proxy.
//!
//! Expected shape: both variants compute the same answers; full coupling
//! tightens the alignment of parallel transfers slightly (laggard
//! transfers borrow ignition from leaders) at a measurable reaction-count
//! cost.

use crate::{sim_job_error, ExpCtx, Report};
use molseq_crn::CrnStats;
use molseq_kinetics::{CompiledCrn, OdeOptions, SimSpec, Simulation, StepHook};
use molseq_sweep::{run_sweep, JobError, SweepJob};
use molseq_sync::{stored_value_at, DelayChain, SchemeConfig};

/// Runs two parallel quantities through a chain and measures how far
/// apart their arrivals spread, plus the construct size.
fn evaluate(
    config: SchemeConfig,
    t_end: f64,
    hook: Option<StepHook<'_>>,
) -> Result<(usize, f64, f64), JobError> {
    // two independent 1-element chains cannot interact except through the
    // shared indicators (and, with full coupling, the cross feedback)
    let chain = DelayChain::build(config, 2).expect("chain");
    let init = chain.initial_state(80.0, &[40.0, 0.0]).expect("state");
    let mut opts = OdeOptions::default()
        .with_t_end(t_end)
        .with_record_interval(0.05);
    if let Some(hook) = hook {
        opts = opts.with_step_hook(hook);
    }
    let compiled = CompiledCrn::new(chain.crn(), &SimSpec::default());
    let trace = Simulation::new(chain.crn(), &compiled)
        .init(&init)
        .options(opts)
        .run()
        .map_err(sim_job_error)?;
    let y = chain.output();
    let final_y = stored_value_at(chain.crn(), &trace, y, t_end);
    // arrival time of the first plateau (the staged 40)
    let mut t_first = f64::INFINITY;
    for &t in trace.times() {
        if stored_value_at(chain.crn(), &trace, y, t) > 35.0 {
            t_first = t;
            break;
        }
    }
    Ok((CrnStats::of(chain.crn()).reactions, final_y, t_first))
}

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) -> Report {
    let mut report = Report::new("a2", "ablation: feedback coupling");
    let t_end = if ctx.quick { 60.0 } else { 150.0 };
    // the two coupling variants are independent: run them as sweep cells
    let arms = [
        ("self-coupled", SchemeConfig::default()),
        (
            "full coupling",
            SchemeConfig {
                sharpeners: true,
                full_coupling: true,
            },
        ),
    ];
    let jobs: Vec<SweepJob<'_, (usize, f64, f64)>> = arms
        .iter()
        .map(|&(label, config)| {
            SweepJob::new(label, move |job| {
                let hook = job.step_hook();
                evaluate(config, t_end, Some(&hook))
            })
        })
        .collect();
    let out = run_sweep(&jobs, &ctx.sweep_options());
    ctx.persist_summary("a2", &out.summary);
    let self_coupled = *out.cells[0].value().expect("arm simulates");
    let full = *out.cells[1].value().expect("arm simulates");

    report.line("delay chain n=2 with staged values (X=80, D1=40)".to_owned());
    report.line(format!(
        "self-coupled: {:3} reactions, final Y {:6.1}, first arrival t = {:6.2}",
        self_coupled.0, self_coupled.1, self_coupled.2
    ));
    report.line(format!(
        "full coupling: {:3} reactions, final Y {:6.1}, first arrival t = {:6.2}",
        full.0, full.1, full.2
    ));
    report.metric(
        "extra reactions for full coupling",
        (full.0 - self_coupled.0) as f64,
    );
    report.metric("final Y difference", (full.1 - self_coupled.1).abs());
    report.line(
        "expected: identical answers; full coupling costs O(n²) reactions for marginally tighter phases"
            .to_owned(),
    );
    report
}

#[cfg(test)]
mod tests {
    use crate::ExpCtx;

    #[test]
    fn coupling_variants_agree() {
        let report = super::run(&ExpCtx::quick());
        let diff = report.metric_value("final Y difference").unwrap();
        assert!(diff < 2.0, "{report}");
        let extra = report
            .metric_value("extra reactions for full coupling")
            .unwrap();
        assert!(extra > 0.0, "{report}");
    }
}
