//! Compares two `--summary` directories and gates on metric regressions.
//!
//! ```sh
//! # persist a baseline, then check a candidate run against it
//! cargo run --release -p molseq-bench --bin repro -- e10 --quick --summary base/
//! cargo run --release -p molseq-bench --bin repro -- e10 --quick --summary cand/
//! cargo run --release -p molseq-bench --bin trend -- base/ cand/
//! ```
//!
//! Prints a markdown report to stdout and exits:
//!
//! * `0` — nothing moved (or only wall-clock improvements);
//! * `1` — a deterministic counter changed, a wall-clock reading exceeded
//!   tolerance, or the two runs have different shapes (cells or whole
//!   experiments present on only one side);
//! * `2` — usage or I/O error.
//!
//! Deterministic simulator counters (step counts, LU factorizations, SSA
//! events, …) must match exactly; per-cell wall clocks compare against
//! `--wall-tol` (relative, default 0.5) with a `--wall-floor` noise floor
//! (seconds, default 0.05). A repeatable `--tolerance NAME=REL` moves the
//! named metric into an explicit relative band instead — e.g.
//! `--tolerance newton_iterations=0.2` lets a platform-noisy counter
//! drift ±20% before gating. `--json FILE` additionally writes the full
//! report as JSON for machine consumption, and `--append FILE` folds the
//! candidate run's headline numbers into a `BENCH_*.json`-style
//! `"trajectory"` array so the perf history accumulates run over run.
//!
//! `--history FILE` switches to trajectory mode: instead of two summary
//! directories, the input is one `BENCH_*.json` file whose `"trajectory"`
//! array was grown by `--append`. The report renders every entry in a
//! markdown table, and `--gate-last K` additionally drift-gates the last
//! `K` entries — oldest comparable entry against newest, skipping entries
//! that cover a different experiment set — with the same exit codes and
//! tolerance flags as directory mode. A gate the history cannot fill —
//! fewer than two entries, or `K` larger than the history — is a usage
//! error (exit `2`), never a vacuous pass.

use molseq_sweep::{
    classify_metric, compare_dirs, history_report, load_summaries, parse_trajectory, JsonValue,
    MetricClass, SweepSummary, TrendOptions,
};
use std::path::Path;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: trend BASELINE_DIR CANDIDATE_DIR [--wall-tol REL] [--wall-floor SECS]\n\
         \x20            [--tolerance NAME=REL]... [--json FILE] [--append FILE]\n\
         \x20            [--label NAME] [--ignore-missing]\n\
         \x20      trend --history FILE [--gate-last K] [--wall-tol REL]\n\
         \x20            [--wall-floor SECS] [--tolerance NAME=REL]... [--json FILE]"
    );
    exit(2);
}

/// Parses a `--tolerance NAME=REL` override.
fn parse_metric_tolerance(value: Option<&String>) -> (String, f64) {
    let Some(value) = value else {
        eprintln!("--tolerance expects NAME=REL (e.g. newton_iterations=0.2)");
        exit(2);
    };
    let Some((name, rel)) = value.split_once('=') else {
        eprintln!("--tolerance expects NAME=REL, got `{value}`");
        exit(2);
    };
    if name.is_empty() {
        eprintln!("--tolerance expects a non-empty metric name, got `{value}`");
        exit(2);
    }
    let rel_owned = rel.to_owned();
    (
        name.to_owned(),
        parse_tolerance("--tolerance", Some(&rel_owned)),
    )
}

/// Parses a tolerance-style flag value: finite and non-negative.
fn parse_tolerance(flag: &str, value: Option<&String>) -> f64 {
    let parsed = value.and_then(|v| v.parse::<f64>().ok());
    match parsed {
        Some(v) if v.is_finite() && v >= 0.0 => v,
        _ => {
            eprintln!("{flag} expects a finite, non-negative number");
            exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dirs: Vec<String> = Vec::new();
    let mut opts = TrendOptions::default();
    let mut json_path: Option<String> = None;
    let mut append_path: Option<String> = None;
    let mut label: Option<String> = None;
    let mut history_path: Option<String> = None;
    let mut gate_last: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--history" => {
                let Some(path) = iter.next() else {
                    eprintln!("--history expects a BENCH_*.json file path");
                    exit(2);
                };
                history_path = Some(path.clone());
            }
            "--gate-last" => {
                let Some(k) = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&k| k > 0)
                else {
                    eprintln!("--gate-last expects a positive entry count");
                    exit(2);
                };
                gate_last = Some(k);
            }
            "--wall-tol" => opts.wall_rel_tol = parse_tolerance("--wall-tol", iter.next()),
            "--wall-floor" => {
                opts.wall_floor_secs = parse_tolerance("--wall-floor", iter.next());
            }
            "--tolerance" => {
                let (name, rel_tol) = parse_metric_tolerance(iter.next());
                opts = opts.with_tolerance(name, rel_tol);
            }
            "--json" => {
                let Some(path) = iter.next() else {
                    eprintln!("--json expects a file path");
                    exit(2);
                };
                json_path = Some(path.clone());
            }
            "--append" => {
                let Some(path) = iter.next() else {
                    eprintln!("--append expects a file path");
                    exit(2);
                };
                append_path = Some(path.clone());
            }
            "--label" => {
                let Some(name) = iter.next() else {
                    eprintln!("--label expects a name");
                    exit(2);
                };
                label = Some(name.clone());
            }
            "--ignore-missing" => opts.require_matching_experiments = false,
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                usage();
            }
            other => dirs.push(other.to_owned()),
        }
    }
    if let Some(path) = history_path {
        if !dirs.is_empty() || append_path.is_some() {
            usage();
        }
        run_history(Path::new(&path), gate_last, &opts, json_path.as_deref());
    }
    if gate_last.is_some() {
        eprintln!("--gate-last only applies with --history");
        exit(2);
    }
    if dirs.len() != 2 {
        usage();
    }
    let (baseline, candidate) = (Path::new(&dirs[0]), Path::new(&dirs[1]));

    let report = match compare_dirs(baseline, candidate, &opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("trend: {e}");
            exit(2);
        }
    };

    print!(
        "trend: {} (baseline) vs {} (candidate)\n\n{}",
        baseline.display(),
        candidate.display(),
        report.to_markdown()
    );

    if let Some(path) = json_path {
        // wrap the report with the inputs and tolerances that produced it
        let mut doc = JsonValue::Object(vec![
            (
                "baseline".to_owned(),
                JsonValue::String(baseline.display().to_string()),
            ),
            (
                "candidate".to_owned(),
                JsonValue::String(candidate.display().to_string()),
            ),
        ]);
        doc.set(
            "options",
            JsonValue::Object(vec![
                (
                    "wall_rel_tol".to_owned(),
                    JsonValue::from_f64(opts.wall_rel_tol),
                ),
                (
                    "wall_floor_secs".to_owned(),
                    JsonValue::from_f64(opts.wall_floor_secs),
                ),
                (
                    "require_matching_experiments".to_owned(),
                    JsonValue::Bool(opts.require_matching_experiments),
                ),
                (
                    "tolerances".to_owned(),
                    JsonValue::Array(
                        opts.tolerances
                            .iter()
                            .map(|t| {
                                JsonValue::Object(vec![
                                    ("name".to_owned(), JsonValue::String(t.name.clone())),
                                    ("rel_tol".to_owned(), JsonValue::from_f64(t.rel_tol)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        );
        let body = JsonValue::parse(&report.to_json()).expect("report serializes to valid JSON");
        doc.set("report", body);
        let mut text = String::new();
        doc.render_compact(&mut text);
        text.push('\n');
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("trend: cannot write {path}: {e}");
            exit(2);
        }
    }

    if let Some(path) = append_path {
        let summaries = match load_summaries(candidate) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("trend: {e}");
                exit(2);
            }
        };
        if let Err(e) = append_trajectory(Path::new(&path), &summaries, label.as_deref()) {
            eprintln!("trend: {e}");
            exit(2);
        }
        println!("appended trajectory entry to {path}");
    }

    if report.is_regression() {
        exit(1);
    }
}

/// Runs trajectory mode: renders the full perf history of one
/// `BENCH_*.json` file and optionally drift-gates the last `gate_last`
/// entries.
fn run_history(
    path: &Path,
    gate_last: Option<usize>,
    opts: &TrendOptions,
    json_path: Option<&str>,
) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("trend: cannot read {}: {e}", path.display());
            exit(2);
        }
    };
    let doc = match JsonValue::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("trend: {}: {e}", path.display());
            exit(2);
        }
    };
    let entries = match parse_trajectory(&doc) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("trend: {}: {e}", path.display());
            exit(2);
        }
    };
    // a window the history cannot fill has no drift to measure: refuse
    // it as a usage error instead of letting the gate pass vacuously
    if let Some(window) = gate_last {
        if entries.len() < 2 {
            eprintln!(
                "trend: {}: --gate-last needs at least two history entries, found {}",
                path.display(),
                entries.len()
            );
            exit(2);
        }
        if window > entries.len() {
            eprintln!(
                "trend: {}: --gate-last {window} exceeds the history length ({} entries)",
                path.display(),
                entries.len()
            );
            exit(2);
        }
    }
    let report = history_report(&entries, gate_last, opts);
    print!(
        "trend: perf history of {} ({} entries)\n\n{}",
        path.display(),
        entries.len(),
        report.to_markdown()
    );
    if let Some(out) = json_path {
        let mut doc = JsonValue::Object(vec![(
            "history".to_owned(),
            JsonValue::String(path.display().to_string()),
        )]);
        let body = JsonValue::parse(&report.to_json()).expect("report serializes to valid JSON");
        doc.set("report", body);
        let mut text = String::new();
        doc.render_compact(&mut text);
        text.push('\n');
        if let Err(e) = std::fs::write(out, text) {
            eprintln!("trend: cannot write {out}: {e}");
            exit(2);
        }
    }
    exit(i32::from(report.is_regression()));
}

/// Folds a run's headline numbers into a `BENCH_*.json`-style perf
/// trajectory: one entry per invocation, appended to the file's
/// `"trajectory"` array (created, file included, when absent). Exact-class
/// metrics are summed across every cell of every experiment (the `seed`
/// column, whose sum is meaningless, is skipped); wall time is the sum of
/// per-cell walls.
fn append_trajectory(
    path: &Path,
    summaries: &[(String, SweepSummary)],
    label: Option<&str>,
) -> Result<(), String> {
    let mut doc = match std::fs::read_to_string(path) {
        Ok(text) => JsonValue::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => JsonValue::Object(Vec::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    if doc.as_object().is_none() {
        return Err(format!(
            "{}: top level is not a JSON object",
            path.display()
        ));
    }
    if doc.get("trajectory").is_none() {
        doc.set("trajectory", JsonValue::Array(Vec::new()));
    }

    let mut cells = 0usize;
    let mut cell_wall = 0.0f64;
    let mut totals: Vec<(String, f64)> = Vec::new();
    let mut ids: Vec<JsonValue> = Vec::new();
    for (id, summary) in summaries {
        ids.push(JsonValue::String(id.clone()));
        cells += summary.jobs.len();
        for job in &summary.jobs {
            cell_wall += job.wall_secs;
            // last value per name, like the CSV export
            let mut seen: Vec<(&str, f64)> = Vec::new();
            for (name, value) in &job.metrics {
                if let Some(entry) = seen.iter_mut().find(|(n, _)| *n == name.as_str()) {
                    entry.1 = *value;
                } else {
                    seen.push((name.as_str(), *value));
                }
            }
            for (name, value) in seen {
                if name == "seed" || classify_metric(name) != MetricClass::Exact {
                    continue;
                }
                if let Some(entry) = totals.iter_mut().find(|(n, _)| n == name) {
                    entry.1 += value;
                } else {
                    totals.push((name.to_owned(), value));
                }
            }
        }
    }

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let metrics = JsonValue::Object(
        totals
            .into_iter()
            .map(|(name, value)| (name, JsonValue::from_f64(value)))
            .collect(),
    );
    let entry = JsonValue::Object(vec![
        (
            "label".to_owned(),
            JsonValue::String(label.unwrap_or("run").to_owned()),
        ),
        (
            "unix_time".to_owned(),
            JsonValue::from_f64(unix_time as f64),
        ),
        ("experiments".to_owned(), JsonValue::Array(ids)),
        ("cells".to_owned(), JsonValue::from_f64(cells as f64)),
        (
            "cell_wall_secs".to_owned(),
            JsonValue::from_f64((cell_wall * 1e6).round() / 1e6),
        ),
        ("metrics".to_owned(), metrics),
    ]);
    doc.get_mut("trajectory")
        .and_then(JsonValue::as_array_mut)
        .ok_or_else(|| format!("{}: `trajectory` is not an array", path.display()))?
        .push(entry);

    std::fs::write(path, doc.render_pretty())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}
