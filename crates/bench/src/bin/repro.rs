//! Regenerates every figure and table of the reproduction.
//!
//! ```sh
//! cargo run --release -p molseq-bench --bin repro          # everything
//! cargo run --release -p molseq-bench --bin repro e3 e6    # a subset
//! cargo run --release -p molseq-bench --bin repro --quick  # reduced workloads
//! ```

use molseq_bench::all_experiments;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    let mut ran = 0;
    for (id, _title, runner) in all_experiments() {
        if !selected.is_empty() && !selected.contains(&id) {
            continue;
        }
        let start = Instant::now();
        let report = runner(quick);
        println!("{report}");
        println!("  (generated in {:.1?})\n", start.elapsed());
        ran += 1;
    }
    if ran == 0 {
        eprintln!("unknown experiment id(s): {selected:?}");
        eprintln!("available: e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 a1 a2");
        std::process::exit(2);
    }
}
