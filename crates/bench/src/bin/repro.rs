//! Regenerates every figure and table of the reproduction.
//!
//! ```sh
//! cargo run --release -p molseq-bench --bin repro            # everything
//! cargo run --release -p molseq-bench --bin repro e3 e6      # a subset
//! cargo run --release -p molseq-bench --bin repro --quick    # reduced workloads
//! cargo run --release -p molseq-bench --bin repro --jobs 8   # sweep cells on 8 workers
//! ```
//!
//! `--jobs N` controls how many worker threads the sweep-backed
//! experiments use: `--jobs 1` forces serial execution, `--jobs 0` (the
//! default) sizes the pool from the machine. Reports are byte-identical
//! at every worker count.

use molseq_bench::{all_experiments, ExpCtx};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut jobs: usize = 0;
    let mut selected: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--jobs" => {
                let Some(n) = iter.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--jobs expects a worker count (0 = one per core)");
                    std::process::exit(2);
                };
                jobs = n;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: repro [--quick] [--jobs N] [experiment ids...]");
                std::process::exit(2);
            }
            other => selected.push(other),
        }
    }
    let ctx = if quick {
        ExpCtx::quick()
    } else {
        ExpCtx::full()
    }
    .with_jobs(jobs);

    let mut ran = 0;
    for (id, _title, runner) in all_experiments() {
        if !selected.is_empty() && !selected.contains(&id) {
            continue;
        }
        let start = Instant::now();
        let report = runner(&ctx);
        println!("{report}");
        println!("  (generated in {:.1?})\n", start.elapsed());
        ran += 1;
    }
    if ran == 0 {
        eprintln!("unknown experiment id(s): {selected:?}");
        eprintln!("available: e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 a1 a2");
        std::process::exit(2);
    }
}
