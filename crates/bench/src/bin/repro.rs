//! Regenerates every figure and table of the reproduction.
//!
//! ```sh
//! cargo run --release -p molseq-bench --bin repro            # everything
//! cargo run --release -p molseq-bench --bin repro e3 e6      # a subset
//! cargo run --release -p molseq-bench --bin repro --quick    # reduced workloads
//! cargo run --release -p molseq-bench --bin repro --jobs 8   # sweep cells on 8 workers
//! cargo run --release -p molseq-bench --bin repro --summary out/  # persist sweep summaries
//! ```
//!
//! `--jobs N` controls how many worker threads the sweep-backed
//! experiments use: `--jobs 1` forces serial execution, `--jobs 0` (the
//! default) sizes the pool from the machine. Reports are byte-identical
//! at every worker count.
//!
//! `--batch WIDTH` runs the ODE and SSA sweep experiments through the
//! lock-step batched kinetics engines, WIDTH cells per group (power of
//! 2; `1`, the default, is the plain scalar path). Simulation results
//! are bit-identical at every width — stochastic lanes keep their own
//! RNG streams — so reports don't change; only wall time and the
//! `batch_width`/`lanes_retired` metric columns do. With `--via-server`
//! the width goes on the wire instead; leaving the flag off lets the
//! server auto-select a width from the submitted cell count.
//!
//! `--summary DIR` writes each sweep's engine summary (status, timing and
//! step meter per cell) to `DIR/<id>.summary.json` and `.csv`.
//! `--cell-steps N` / `--cell-wall SECS` impose a cooperative per-cell
//! budget, enforced inside the integration loops via step hooks; cells
//! that exceed it are reported as budget failures, not crashes. Step
//! budgets are deterministic; wall budgets are machine-dependent and
//! therefore break byte-reproducibility of failure rows.
//!
//! `--trend-against DIR` (requires `--summary`) compares the summaries
//! this run just persisted against a previously persisted baseline
//! directory and exits `1` when a deterministic simulator counter moved
//! or a cell's wall clock regressed beyond tolerance — see the `trend`
//! binary for the standalone comparator and the tolerance knobs.
//!
//! `--via-server HOST:PORT` skips the local experiments and instead
//! drives an E10-style stochastic sweep through a running `serve`
//! instance over the wire, twice, verifying byte-identical results and
//! compiled-CRN cache hits, plus a cancellation probe — and, with
//! `--server-budget-tenant NAME`, a deterministic budget-cut probe
//! against a tenant the server step-budgets. `--method
//! ssa|ode|tau|hybrid` picks the simulator the main sweep runs under
//! (default `ssa`; `--method hybrid` drives the hybrid ODE/SSA engine
//! over the wire on a motif with a fast reverse pair). `--t-end SECS`
//! overrides the main sweep's horizon — validated here exactly as the
//! server validates the wire field, so a NaN/infinite/non-positive
//! horizon exits `2` before anything is submitted. `--summary DIR`
//! persists the sweep rows and the server counters through the standard
//! summary pipeline (`via-server.summary.*`, `server-stats.summary.*`).
//!
//! `--netlist FILE` runs a textual netlist (see `DESIGN.md` §14) as a
//! fixed deterministic ODE sweep — on an in-process single-worker server
//! by default, or over the wire against `--via-server HOST:PORT` as the
//! protocol's `{"netlist": ...}` program form. A netlist that does not
//! parse or compile exits `2` with its source position before anything
//! is submitted. `--netlist-builtin seqdet` runs the hand-assembled
//! counterpart of `examples/netlists/seqdet.nl` (shipped as its lowered
//! CRN text), producing byte-identical rows and summaries — the CI
//! stage diffs the two. `--summary DIR` persists
//! `netlist.summary.{json,csv}`.

use molseq_bench::{all_experiments, ExpCtx};
use molseq_sweep::{compare_dirs, JobBudget, TrendOptions};
use std::path::Path;
use std::time::{Duration, Instant};

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: repro [--quick] [--jobs N] [--batch WIDTH] [--summary DIR] \
         [--cell-steps N] [--cell-wall SECS] [--trend-against DIR] \
         [--via-server HOST:PORT] [--method ssa|ode|tau|hybrid] \
         [--t-end SECS] [--server-budget-tenant NAME] \
         [--netlist FILE | --netlist-builtin NAME] [experiment ids...]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut jobs: usize = 0;
    // None = flag absent: scalar locally, server-chosen width over the wire
    let mut batch: Option<usize> = None;
    let mut t_end: Option<f64> = None;
    let mut summary_dir: Option<String> = None;
    let mut trend_against: Option<String> = None;
    let mut via_server: Option<String> = None;
    let mut method: Option<molseq_serve::Method> = None;
    let mut budget_tenant: Option<String> = None;
    let mut netlist_file: Option<String> = None;
    let mut netlist_builtin: Option<String> = None;
    let mut budget = JobBudget::unlimited();
    let mut selected: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--jobs" => {
                let Some(n) = iter.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--jobs expects a worker count (0 = one per core)");
                    std::process::exit(2);
                };
                jobs = n;
            }
            "--batch" => {
                // the SoA lanes want a power-of-2 width so chunks stay
                // register-aligned; 0 would mean "no lanes at all"
                let Some(n) = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n.is_power_of_two())
                else {
                    eprintln!("--batch expects a power-of-2 lane count (1 = scalar)");
                    std::process::exit(2);
                };
                batch = Some(n);
            }
            "--t-end" => {
                // mirror the server's submit-time validation: a NaN,
                // infinite, or non-positive horizon must die here, before
                // any worker runs (same treatment `--cell-wall` gets)
                let Some(secs) = iter
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|&s| s.is_finite() && s > 0.0)
                else {
                    eprintln!("--t-end expects a finite positive horizon in seconds");
                    std::process::exit(2);
                };
                t_end = Some(secs);
            }
            "--summary" => {
                let Some(dir) = iter.next() else {
                    eprintln!("--summary expects a directory path");
                    std::process::exit(2);
                };
                summary_dir = Some(dir.clone());
            }
            "--cell-steps" => {
                // a zero budget would fail every cell on its first step —
                // always a typo, never a useful run
                let Some(n) = iter.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0) else {
                    eprintln!("--cell-steps expects a positive step count");
                    std::process::exit(2);
                };
                budget = budget.with_max_steps(n);
            }
            "--cell-wall" => {
                // `Duration::from_secs_f64` panics on negative/NaN/overflow
                // input; validate here and exit 2 like every other bad flag
                let secs = iter.next().and_then(|v| v.parse::<f64>().ok());
                let wall = secs
                    .filter(|&s| s > 0.0)
                    .and_then(|s| Duration::try_from_secs_f64(s).ok());
                let Some(wall) = wall else {
                    eprintln!("--cell-wall expects a positive duration in seconds");
                    std::process::exit(2);
                };
                budget = budget.with_max_wall(wall);
            }
            "--via-server" => {
                let Some(addr) = iter.next() else {
                    eprintln!("--via-server expects a HOST:PORT address");
                    std::process::exit(2);
                };
                via_server = Some(addr.clone());
            }
            "--netlist" => {
                let Some(path) = iter.next() else {
                    eprintln!("--netlist expects a netlist file path");
                    std::process::exit(2);
                };
                netlist_file = Some(path.clone());
            }
            "--netlist-builtin" => {
                let Some(name) = iter.next() else {
                    eprintln!("--netlist-builtin expects a circuit name (available: seqdet)");
                    std::process::exit(2);
                };
                netlist_builtin = Some(name.clone());
            }
            "--method" => {
                let Some(m) = iter
                    .next()
                    .and_then(|v| molseq_serve::Method::parse(v).ok())
                else {
                    eprintln!("--method expects one of: ssa, ode, tau, hybrid");
                    std::process::exit(2);
                };
                method = Some(m);
            }
            "--server-budget-tenant" => {
                let Some(name) = iter.next() else {
                    eprintln!("--server-budget-tenant expects a tenant name");
                    std::process::exit(2);
                };
                budget_tenant = Some(name.clone());
            }
            "--trend-against" => {
                let Some(dir) = iter.next() else {
                    eprintln!("--trend-against expects a baseline summary directory");
                    std::process::exit(2);
                };
                trend_against = Some(dir.clone());
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                usage_and_exit();
            }
            other => selected.push(other),
        }
    }
    if trend_against.is_some() && summary_dir.is_none() {
        eprintln!("--trend-against needs --summary DIR to have a candidate to compare");
        std::process::exit(2);
    }
    if budget_tenant.is_some() && via_server.is_none() {
        eprintln!("--server-budget-tenant only makes sense with --via-server");
        std::process::exit(2);
    }
    if method.is_some() && via_server.is_none() {
        eprintln!("--method only makes sense with --via-server (local experiments pick their own integrators)");
        std::process::exit(2);
    }
    if t_end.is_some() && via_server.is_none() {
        eprintln!("--t-end only makes sense with --via-server (local experiments pick their own horizons)");
        std::process::exit(2);
    }
    if netlist_file.is_some() || netlist_builtin.is_some() {
        if netlist_file.is_some() && netlist_builtin.is_some() {
            eprintln!("--netlist and --netlist-builtin are mutually exclusive");
            std::process::exit(2);
        }
        if !selected.is_empty() {
            eprintln!("--netlist runs the netlist sweep, not local experiments");
            std::process::exit(2);
        }
        if method.is_some() || t_end.is_some() || budget_tenant.is_some() {
            eprintln!("--netlist pins its own method and horizon (drop --method/--t-end/--server-budget-tenant)");
            std::process::exit(2);
        }
        // a bad netlist (or unknown builtin) is a usage error: exit 2,
        // with the parse position, before anything is submitted
        let source = match (&netlist_file, &netlist_builtin) {
            (Some(path), _) => molseq_bench::netlist_from_file(Path::new(path)),
            (_, Some(name)) => molseq_bench::netlist_builtin(name),
            _ => unreachable!("guarded above"),
        };
        let source = match source {
            Ok(source) => source,
            Err(e) => {
                eprintln!("netlist: {e}");
                std::process::exit(2);
            }
        };
        match molseq_bench::run_netlist(
            &source,
            via_server.as_deref(),
            summary_dir.as_deref().map(Path::new),
        ) {
            Ok(report) => {
                print!("{report}");
                return;
            }
            Err(e) => {
                eprintln!("netlist: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(addr) = via_server {
        if !selected.is_empty() {
            eprintln!("--via-server runs the server smoke suite, not local experiments");
            std::process::exit(2);
        }
        match molseq_bench::run_via_server(
            &addr,
            method.unwrap_or(molseq_serve::Method::Ssa),
            batch,
            t_end,
            budget_tenant.as_deref(),
            summary_dir.as_deref().map(Path::new),
        ) {
            Ok(report) => {
                print!("{report}");
                return;
            }
            Err(e) => {
                eprintln!("via-server: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut ctx = if quick {
        ExpCtx::quick()
    } else {
        ExpCtx::full()
    }
    .with_jobs(jobs)
    .with_batch(batch.unwrap_or(1))
    .with_budget(budget);
    if let Some(dir) = &summary_dir {
        ctx = ctx.with_summary_dir(dir.clone());
    }

    let experiments = all_experiments();
    // validate the whole selection upfront: every unknown id is an error,
    // even when other requested ids are valid — a typo must not silently
    // shrink the run
    let unknown: Vec<&str> = selected
        .iter()
        .copied()
        .filter(|id| !experiments.iter().any(|(known, _, _)| known == id))
        .collect();
    if !unknown.is_empty() {
        eprintln!("unknown experiment id(s): {}", unknown.join(" "));
        let available: Vec<&str> = experiments.iter().map(|(id, _, _)| *id).collect();
        eprintln!("available: {}", available.join(" "));
        std::process::exit(2);
    }

    for (id, _title, runner) in experiments {
        if !selected.is_empty() && !selected.contains(&id) {
            continue;
        }
        let start = Instant::now();
        let report = runner(&ctx);
        println!("{report}");
        println!("  (generated in {:.1?})\n", start.elapsed());
    }

    if let Some(baseline) = trend_against {
        let candidate = summary_dir.expect("checked together with --trend-against");
        // a subset run (`repro e10 --trend-against full-baseline/`) is the
        // common case, so experiments present on only one side don't gate
        let opts = TrendOptions::default().with_require_matching_experiments(false);
        match compare_dirs(Path::new(&baseline), Path::new(&candidate), &opts) {
            Ok(report) => {
                print!(
                    "trend: {baseline} (baseline) vs {candidate} (this run)\n\n{}",
                    report.to_markdown()
                );
                if report.is_regression() {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("trend: {e}");
                std::process::exit(2);
            }
        }
    }
}
