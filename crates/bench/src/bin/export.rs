//! Exports the headline figures as CSV traces (for external plotting) and
//! the headline networks as Graphviz `dot` files.
//!
//! ```sh
//! cargo run --release -p molseq-bench --bin export -- out_dir
//! cargo run --release -p molseq-bench --bin export -- out_dir --jobs 2
//! cargo run --release -p molseq-bench --bin export -- out_dir --summary sums/
//! dot -Tsvg out_dir/clock.dot -o clock.svg
//! ```
//!
//! The three trace simulations are sweep cells: they run in parallel
//! under `--jobs N` (`0` = one worker per core, `1` = serial) and render
//! their CSV bytes in-memory; files are then written serially in job
//! order, so the artifacts and the printed log are byte-identical at any
//! worker count. `--summary DIR` persists the sweep's engine summary
//! (status, timing and simulator metrics per cell) as
//! `DIR/export.summary.{json,csv}`.

use molseq_bench::{record_sim_metrics, sim_job_error, sync_job_error, ExpCtx};
use molseq_crn::to_dot;
use molseq_dsp::moving_average;
use molseq_kinetics::{CompiledCrn, OdeOptions, SimMetrics, SimSpec, Simulation};
use molseq_sweep::{run_sweep, JobCtx, JobError, SweepJob};
use molseq_sync::{
    drive_cycles, Clock, ClockSpec, CycleResources, DelayChain, RunConfig, SchemeConfig,
};
use std::cell::Cell;
use std::fs;
use std::path::Path;

/// One exported figure: the file stem plus rendered artifact bodies.
struct Artifact {
    stem: &'static str,
    csv: Vec<u8>,
    dot: String,
    samples: usize,
}

/// E1: the clock — trace + network graph.
fn clock_artifact(job: &JobCtx) -> Result<Artifact, JobError> {
    let clock = Clock::build(SchemeConfig::default(), 100.0).map_err(sync_job_error)?;
    let hook = job.step_hook();
    let sink = Cell::new(SimMetrics::default());
    let opts = OdeOptions::default()
        .with_t_end(60.0)
        .with_record_interval(0.02)
        .with_step_hook(&hook)
        .with_metrics(&sink);
    let compiled = CompiledCrn::new(clock.crn(), &SimSpec::default());
    let result = Simulation::new(clock.crn(), &compiled)
        .init(&clock.initial_state())
        .options(opts)
        .run();
    record_sim_metrics(job, sink.get());
    let trace = result.map_err(sim_job_error)?;
    let mut csv = Vec::new();
    trace.write_csv(&mut csv).map_err(JobError::failed)?;
    Ok(Artifact {
        stem: "clock",
        csv,
        dot: to_dot(clock.crn()),
        samples: trace.len(),
    })
}

/// E2: the delay chain.
fn delay_chain_artifact(job: &JobCtx) -> Result<Artifact, JobError> {
    let chain = DelayChain::build(SchemeConfig::default(), 2).map_err(sync_job_error)?;
    let init = chain
        .initial_state(80.0, &[30.0, 55.0])
        .map_err(sync_job_error)?;
    let hook = job.step_hook();
    let sink = Cell::new(SimMetrics::default());
    let opts = OdeOptions::default()
        .with_t_end(60.0)
        .with_record_interval(0.02)
        .with_step_hook(&hook)
        .with_metrics(&sink);
    let compiled = CompiledCrn::new(chain.crn(), &SimSpec::default());
    let result = Simulation::new(chain.crn(), &compiled)
        .init(&init)
        .options(opts)
        .run();
    record_sim_metrics(job, sink.get());
    let trace = result.map_err(sim_job_error)?;
    let mut csv = Vec::new();
    trace.write_csv(&mut csv).map_err(JobError::failed)?;
    Ok(Artifact {
        stem: "delay_chain",
        csv,
        dot: to_dot(chain.crn()),
        samples: trace.len(),
    })
}

/// E3: the moving-average filter, full run.
fn moving_average_artifact(job: &JobCtx) -> Result<Artifact, JobError> {
    let filter = moving_average(2, ClockSpec::default()).map_err(sync_job_error)?;
    let samples = [10.0, 50.0, 10.0, 80.0, 80.0, 20.0, 20.0, 60.0];
    let hook = job.step_hook();
    let sink = Cell::new(SimMetrics::default());
    let config = RunConfig {
        step_hook: Some(&hook),
        metrics: Some(&sink),
        ..RunConfig::default()
    };
    let result = drive_cycles(
        filter.system(),
        &[("x", &samples)],
        samples.len(),
        &config,
        CycleResources::default(),
    );
    record_sim_metrics(job, sink.get());
    let run = result.map_err(sync_job_error)?;
    let mut csv = Vec::new();
    run.trace().write_csv(&mut csv).map_err(JobError::failed)?;
    Ok(Artifact {
        stem: "moving_average",
        csv,
        dot: to_dot(filter.system().crn()),
        samples: run.trace().len(),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir_arg: Option<String> = None;
    let mut jobs: usize = 0;
    let mut summary_dir: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--jobs" => {
                let Some(n) = iter.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--jobs expects a worker count (0 = one per core)");
                    std::process::exit(2);
                };
                jobs = n;
            }
            "--summary" => {
                let Some(dir) = iter.next() else {
                    eprintln!("--summary expects a directory path");
                    std::process::exit(2);
                };
                summary_dir = Some(dir.clone());
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                eprintln!("usage: export [out_dir] [--jobs N] [--summary DIR]");
                std::process::exit(2);
            }
            other if dir_arg.is_none() => dir_arg = Some(other.to_owned()),
            other => {
                eprintln!("unexpected argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let dir_arg = dir_arg.unwrap_or_else(|| "export".to_owned());
    let dir = Path::new(&dir_arg);
    fs::create_dir_all(dir)?;

    let mut ctx = ExpCtx::full().with_jobs(jobs);
    if let Some(s) = summary_dir {
        ctx = ctx.with_summary_dir(s);
    }

    let export_jobs: Vec<SweepJob<'static, Artifact>> = vec![
        SweepJob::new("clock", clock_artifact),
        SweepJob::new("delay_chain", delay_chain_artifact),
        SweepJob::new("moving_average", moving_average_artifact),
    ];
    let out = run_sweep(&export_jobs, &ctx.sweep_options());
    ctx.persist_summary("export", &out.summary);

    // file writes and log lines stay serial and in job order, whatever
    // the worker count — the artifacts must be byte-identical
    let mut failures = 0usize;
    for cell in &out.cells {
        match cell.value() {
            Some(artifact) => {
                fs::write(dir.join(format!("{}.csv", artifact.stem)), &artifact.csv)?;
                fs::write(dir.join(format!("{}.dot", artifact.stem)), &artifact.dot)?;
                println!(
                    "wrote {stem}.csv ({} samples) and {stem}.dot",
                    artifact.samples,
                    stem = artifact.stem
                );
            }
            None => {
                failures += 1;
                eprintln!(
                    "export `{}` failed: {}",
                    cell.label,
                    cell.detail().unwrap_or("unknown error")
                );
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }

    println!(
        "\nrender the graphs with e.g.:  dot -Tsvg {}/clock.dot -o clock.svg",
        dir.display()
    );
    Ok(())
}
