//! Exports the headline figures as CSV traces (for external plotting) and
//! the headline networks as Graphviz `dot` files.
//!
//! ```sh
//! cargo run --release -p molseq-bench --bin export -- out_dir
//! dot -Tsvg out_dir/clock.dot -o clock.svg
//! ```

use molseq_crn::to_dot;
use molseq_dsp::moving_average;
use molseq_kinetics::{simulate_ode, OdeOptions, Schedule, SimSpec};
use molseq_sync::{run_cycles, Clock, ClockSpec, DelayChain, RunConfig, SchemeConfig};
use std::fs;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "export".to_owned());
    let dir = Path::new(&dir);
    fs::create_dir_all(dir)?;

    // E1: the clock — trace + network graph
    let clock = Clock::build(SchemeConfig::default(), 100.0)?;
    let trace = simulate_ode(
        clock.crn(),
        &clock.initial_state(),
        &Schedule::new(),
        &OdeOptions::default()
            .with_t_end(60.0)
            .with_record_interval(0.02),
        &SimSpec::default(),
    )?;
    trace.write_csv(fs::File::create(dir.join("clock.csv"))?)?;
    fs::write(dir.join("clock.dot"), to_dot(clock.crn()))?;
    println!("wrote clock.csv ({} samples) and clock.dot", trace.len());

    // E2: the delay chain
    let chain = DelayChain::build(SchemeConfig::default(), 2)?;
    let trace = simulate_ode(
        chain.crn(),
        &chain.initial_state(80.0, &[30.0, 55.0])?,
        &Schedule::new(),
        &OdeOptions::default()
            .with_t_end(60.0)
            .with_record_interval(0.02),
        &SimSpec::default(),
    )?;
    trace.write_csv(fs::File::create(dir.join("delay_chain.csv"))?)?;
    fs::write(dir.join("delay_chain.dot"), to_dot(chain.crn()))?;
    println!(
        "wrote delay_chain.csv ({} samples) and delay_chain.dot",
        trace.len()
    );

    // E3: the moving-average filter, full run
    let filter = moving_average(2, ClockSpec::default())?;
    let samples = [10.0, 50.0, 10.0, 80.0, 80.0, 20.0, 20.0, 60.0];
    let run = run_cycles(
        filter.system(),
        &[("x", &samples)],
        samples.len(),
        &RunConfig::default(),
    )?;
    run.trace()
        .write_csv(fs::File::create(dir.join("moving_average.csv"))?)?;
    fs::write(
        dir.join("moving_average.dot"),
        to_dot(filter.system().crn()),
    )?;
    println!(
        "wrote moving_average.csv ({} samples) and moving_average.dot",
        run.trace().len()
    );

    println!(
        "\nrender the graphs with e.g.:  dot -Tsvg {}/clock.dot -o clock.svg",
        dir.display()
    );
    Ok(())
}
