//! The `repro --netlist` path: run a textual netlist as a batch
//! simulation job — the front-end-to-server pipeline end to end.
//!
//! The circuit comes from one of two sources:
//!
//! * `--netlist FILE` — netlist text, validated **client-side** first
//!   (parse errors with their line/column exit `2` before anything is
//!   submitted), then shipped as the wire protocol's
//!   `{"netlist": ...}` program form and compiled server-side;
//! * `--netlist-builtin seqdet` — the same sequence-detector circuit
//!   hand-assembled through [`Fsm::build`], lowered locally, and shipped
//!   as its CRN text with the compiled initial state spelled out.
//!
//! Both sources resolve to the same compiled structure, so their result
//! rows — and the persisted `netlist.summary.{json,csv}` — are
//! **byte-identical**, which is exactly what the CI stage diffs. Without
//! `--via-server` the job runs on an in-process single-worker server
//! (still over loopback TCP, exercising the full wire path); with it,
//! the job goes to the running instance, where rows are byte-identical
//! at any worker count.

use molseq_serve::{
    rows_to_summary, CellRow, CellSpec, Client, Method, Program, Server, ServerConfig,
    SubmitRequest,
};
use molseq_sweep::{JobStatus, SweepSummary};
use molseq_sync::{compile_netlist_source, ClockSpec, Fsm};
use std::path::Path;

/// A resolved `--netlist` / `--netlist-builtin` source: the wire program,
/// its base initial state, and a human label for the report.
pub struct NetlistSource {
    program: Program,
    init: Vec<(String, f64)>,
    describe: String,
}

/// Loads and validates a netlist file. The text is compiled locally so a
/// malformed or uncompilable netlist dies here — with its source
/// position — before any submission; what goes on the wire is the
/// original text, compiled again server-side.
///
/// # Errors
///
/// A description of the I/O, parse (with line/column), or lowering
/// failure — callers exit `2` on it.
pub fn netlist_from_file(path: &Path) -> Result<NetlistSource, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read netlist {}: {e}", path.display()))?;
    let system = compile_netlist_source(&text, ClockSpec::default())
        .map_err(|e| format!("netlist {}: {e}", path.display()))?;
    Ok(NetlistSource {
        program: Program::Netlist(text),
        init: Vec::new(),
        describe: format!(
            "netlist {} ({} species, {} reactions)",
            path.display(),
            system.crn().species_count(),
            system.crn().reactions().len()
        ),
    })
}

/// The hand-assembled counterpart of a builtin circuit, shipped as its
/// lowered CRN text plus the compiled initial state. Currently one
/// builtin: `seqdet`, the "11" sequence detector
/// (`Fsm::build(clock, 60, [[0,1],[0,2],[2,2]], 0)`) that
/// `examples/netlists/seqdet.nl` mirrors.
///
/// # Errors
///
/// An unknown builtin name (the usage error), or a build failure.
pub fn netlist_builtin(name: &str) -> Result<NetlistSource, String> {
    match name {
        "seqdet" => {
            let fsm = Fsm::build(ClockSpec::default(), 60.0, &[[0, 1], [0, 2], [2, 2]], 0)
                .map_err(|e| format!("builtin seqdet does not build: {e}"))?;
            let system = fsm.system();
            let init_state = system.initial_state();
            let init = (0..system.crn().species_count())
                .map(molseq_crn::SpeciesId::from_index)
                .filter(|&id| init_state.get(id) != 0.0)
                .map(|id| (system.crn().species_name(id).to_owned(), init_state.get(id)))
                .collect();
            Ok(NetlistSource {
                program: Program::Crn(system.crn().to_string()),
                init,
                describe: format!(
                    "builtin seqdet ({} species, {} reactions)",
                    system.crn().species_count(),
                    system.crn().reactions().len()
                ),
            })
        }
        other => Err(format!("unknown builtin `{other}` (available: seqdet)")),
    }
}

/// The fixed sweep every netlist run submits: three default-rate
/// replicate cells plus one rate-override cell (the rebind path), under
/// the deterministic ODE integrator so rows are byte-identical across
/// sources, worker counts, and machines.
fn submit_request(source: &NetlistSource) -> SubmitRequest {
    let mut cells: Vec<CellSpec> = (0..3)
        .map(|i| CellSpec {
            label: format!("rep={i}"),
            k_fast: None,
            k_slow: None,
        })
        .collect();
    cells.push(CellSpec {
        label: "k=500/2".to_owned(),
        k_fast: Some(500.0),
        k_slow: Some(2.0),
    });
    SubmitRequest {
        tenant: "netlist".to_owned(),
        program: source.program.clone(),
        init: source.init.clone(),
        method: Method::Ode,
        t_end: 40.0,
        record_interval: None,
        seed: 5,
        injections: vec![],
        batch: Some(1),
        cells,
    }
}

fn persist(dir: &Path, id: &str, summary: &SweepSummary) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create summary dir {}: {e}", dir.display()))?;
    for (ext, body) in [("json", summary.to_json()), ("csv", summary.to_csv())] {
        let path = dir.join(format!("{id}.summary.{ext}"));
        std::fs::write(&path, body).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(())
}

/// Runs `source`'s sweep — against the server at `addr` when given,
/// otherwise on an in-process single-worker server — and persists
/// `netlist.summary.{json,csv}` when a summary directory is configured.
/// Returns the human-readable report.
///
/// # Errors
///
/// A description of the first failed connection, submission, fetch, or
/// persistence step — callers exit nonzero on it.
pub fn run_netlist(
    source: &NetlistSource,
    addr: Option<&str>,
    summary_dir: Option<&Path>,
) -> Result<String, String> {
    let local = match addr {
        Some(_) => None,
        None => Some(
            Server::start(ServerConfig::default().with_workers(1))
                .map_err(|e| format!("cannot start in-process server: {e}"))?,
        ),
    };
    let target = match addr {
        Some(addr) => addr.to_owned(),
        None => local.as_ref().expect("started above").addr().to_string(),
    };
    let mut client =
        Client::connect(&target).map_err(|e| format!("cannot connect to {target}: {e}"))?;

    let request = submit_request(source);
    let ack = client
        .submit(&request)
        .map_err(|e| format!("netlist sweep rejected: {e}"))?;
    let rows: Vec<CellRow> = client
        .fetch_all(&ack.job_id)
        .map_err(|e| format!("netlist sweep failed: {e}"))?;
    let not_ok = rows.iter().filter(|r| r.status != JobStatus::Ok).count();
    if not_ok > 0 {
        return Err(format!(
            "netlist sweep: {not_ok}/{} cells not Ok",
            rows.len()
        ));
    }

    let mut report = format!(
        "netlist: {} — {} cells Ok ({})\n",
        source.describe,
        rows.len(),
        if addr.is_some() {
            "via server"
        } else {
            "in-process server, 1 worker"
        },
    );
    if let Some(dir) = summary_dir {
        persist(dir, "netlist", &rows_to_summary(&rows, 1))?;
        report.push_str(&format!(
            "netlist: summary persisted to {}\n",
            dir.display()
        ));
    }

    if let Some(server) = local {
        client
            .shutdown()
            .map_err(|e| format!("in-process server shutdown failed: {e}"))?;
        server.join();
    }
    Ok(report)
}
