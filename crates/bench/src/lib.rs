//! # molseq-bench — the experiment reproduction harness
//!
//! One module per evaluation artifact of the paper reproduction (see
//! `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for
//! recorded results):
//!
//! | id | artifact |
//! |----|----------|
//! | E1 | chemical clock oscillation (figure) |
//! | E2 | delay-element chain transfer (figure) |
//! | E3 | moving-average filter (figure) |
//! | E4 | binary counter (figure) |
//! | E5 | construct costs (table) |
//! | E6 | rate-ratio robustness sweep (figure) |
//! | E7 | per-reaction rate jitter (figure) |
//! | E8 | strand-displacement mapping (figure + table) |
//! | E9 | clocked vs self-timed latency (figure) |
//! | E10 | stochastic validity at small counts (figure) |
//! | E11 | strand-displacement leak robustness (figure) |
//! | E12 | filter frequency response (figure) |
//! | E13 | stiff clocked kinetics: implicit vs explicit tau-leaping (table) |
//! | E14 | hybrid ODE/SSA vs pure SSA vs implicit tau on the stiff clock (table) |
//! | A1 | ablation: sharpeners on/off |
//! | A2 | ablation: self vs cross-coupled feedback |
//!
//! Run everything with `cargo run --release -p molseq-bench --bin repro`,
//! or a single experiment with e.g. `… --bin repro e3`. The criterion
//! benches (`cargo bench`) print each report once and then time the
//! underlying simulation kernel.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod netlist_run;
pub mod report;
pub mod via_server;

pub use netlist_run::{netlist_builtin, netlist_from_file, run_netlist, NetlistSource};
pub use report::Report;
pub use via_server::run_via_server;

use molseq_crn::Crn;
use molseq_dsp::Filter;
use molseq_kinetics::{
    run_ssa_batch, BatchedOdeWorkspace, BatchedStochWorkspace, CompiledCrn, MetricsSink,
    Replicator, Schedule, SimError, SimMetrics, SimSpec, Simulation, SsaBatchLane, SsaOptions,
    State, StepHook, Trace,
};
use molseq_sweep::{
    GroupJob, JobBudget, JobCtx, JobError, SweepJob, SweepOptions, SweepSummary, SweepUnit,
};
use molseq_sync::{BatchCell, RunConfig, SyncError};
use std::cell::Cell;
use std::path::PathBuf;

/// How an experiment should be run: workload size, sweep parallelism,
/// per-cell budgets, and where (if anywhere) to persist sweep summaries.
///
/// The sweep-shaped experiments (E6/E7/E10/E11, A1/A2) fan their cells
/// out on the [`molseq_sweep`] engine; `jobs` sets its worker count. The
/// engine's per-cell results are deterministic in job order, so reports
/// are byte-identical whatever `jobs` is. `budget` is enforced *inside*
/// each cell's simulation via the integrators' step hooks
/// ([`molseq_kinetics::StepHook`]), so a runaway cell is cut off
/// mid-integration instead of only between cells.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExpCtx {
    /// Reduced workload (used by tests and the criterion wrapper).
    pub quick: bool,
    /// Sweep worker threads: `0` = one per hardware thread, `1` = serial.
    pub jobs: usize,
    /// Per-cell cooperative budget (steps and/or wall time).
    pub budget: JobBudget,
    /// When set, each sweep's [`SweepSummary`] is persisted under this
    /// directory as `<id>.summary.json` and `<id>.summary.csv`.
    pub summary_dir: Option<PathBuf>,
    /// Lock-step batch width for the sweep experiments: how many
    /// structurally identical cells advance together through one
    /// `molseq_kinetics::run_ode_batch` / `run_ssa_batch` / `run_tau_batch`
    /// call. `0` or `1` = scalar cells. Results are bit-identical at any
    /// width; only the wall time and the `batch_width`/`lanes_retired`
    /// metrics change.
    pub batch: usize,
}

impl ExpCtx {
    /// Full workload, auto parallelism, unlimited budget.
    #[must_use]
    pub fn full() -> Self {
        ExpCtx {
            quick: false,
            ..ExpCtx::default()
        }
    }

    /// Reduced workload, auto parallelism, unlimited budget.
    #[must_use]
    pub fn quick() -> Self {
        ExpCtx {
            quick: true,
            ..ExpCtx::default()
        }
    }

    /// Sets the sweep worker count (builder style).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Sets the per-cell budget (builder style).
    #[must_use]
    pub fn with_budget(mut self, budget: JobBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the summary persistence directory (builder style).
    #[must_use]
    pub fn with_summary_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.summary_dir = Some(dir.into());
        self
    }

    /// Sets the lock-step batch width (builder style).
    #[must_use]
    pub fn with_batch(mut self, width: usize) -> Self {
        self.batch = width;
        self
    }

    /// The sweep-engine options this context implies.
    #[must_use]
    pub fn sweep_options(&self) -> SweepOptions {
        SweepOptions::default()
            .with_workers(self.jobs)
            .with_budget(self.budget)
            .with_batch_width(self.batch)
    }

    /// Persists `summary` as `<summary_dir>/<id>.summary.{json,csv}` when a
    /// summary directory is configured; a no-op otherwise. I/O failures are
    /// reported on stderr, not propagated — summary persistence must never
    /// fail an experiment.
    pub fn persist_summary(&self, id: &str, summary: &SweepSummary) {
        let Some(dir) = &self.summary_dir else {
            return;
        };
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create summary dir {}: {e}", dir.display());
            return;
        }
        for (ext, body) in [("json", summary.to_json()), ("csv", summary.to_csv())] {
            let path = dir.join(format!("{id}.summary.{ext}"));
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
    }
}

/// Maps a harness error to the sweep's job-error taxonomy: a cooperative
/// interruption (step hook / budget) is [`JobError::BudgetExceeded`],
/// anything else a plain failure.
#[must_use]
pub fn sync_job_error(e: SyncError) -> JobError {
    match e {
        SyncError::Simulation(SimError::Interrupted { time, reason }) => {
            JobError::BudgetExceeded(format!("interrupted at t = {time}: {reason}"))
        }
        other => JobError::failed(other),
    }
}

/// Records every field of a simulator's [`SimMetrics`] as per-cell sweep
/// metrics, so every experiment's summary carries the same columns
/// (irrelevant counters are simply zero — an ODE cell reports
/// `ssa_events = 0`). Call it right after the simulation, *before* acting
/// on its result, so interrupted and failed cells still report the work
/// they did. The `seed` column is lossy above 2^53 (metrics are `f64`);
/// replicate labels carry the exact seed.
pub fn record_sim_metrics(job: &JobCtx, m: SimMetrics) {
    job.record_metric("ode_steps_accepted", m.ode_steps_accepted as f64);
    job.record_metric("ode_steps_rejected", m.ode_steps_rejected as f64);
    job.record_metric("lu_factorizations", m.lu_factorizations as f64);
    job.record_metric("ssa_events", m.ssa_events as f64);
    job.record_metric("tau_leaps", m.tau_leaps as f64);
    job.record_metric("tau_leaps_implicit", m.tau_leaps_implicit as f64);
    job.record_metric("newton_iterations", m.newton_iterations as f64);
    job.record_metric("leap_switchovers", m.leap_switchovers as f64);
    job.record_metric("hybrid_slow_events", m.hybrid_slow_events as f64);
    job.record_metric("hybrid_fast_steps", m.hybrid_fast_steps as f64);
    job.record_metric("hybrid_repartitions", m.hybrid_repartitions as f64);
    job.record_metric("final_time", m.final_time);
    job.record_metric("seed", m.seed as f64);
    job.record_metric("batch_width", m.batch_width as f64);
    job.record_metric("lanes_retired", m.lanes_retired as f64);
}

/// One cell of a batched filter grid: label, rate binding, and the
/// cycle-time hint the harness should start from.
pub type FilterGridCell = (String, SimSpec, f64);

/// Builds the sweep units for a rate grid over one filter: one lane per
/// spec, packed into lock-step [`GroupJob`]s of `width` consecutive cells
/// (the grouping is sound because every
/// [`CompiledCrn::rebind`] of `base` keeps the network's structural hash,
/// so all lanes share one Jacobian pattern). Width `0`/`1` — and any
/// leftover singleton chunk — fall back to plain scalar [`SweepJob`]s.
///
/// Per-cell labels, SplitMix64 seeds (global index order), step-hook
/// budgets, recorded [`SimMetrics`] columns and job-order results are all
/// preserved: a sweep built at any width reports the same cells in the
/// same order with bit-identical simulation results, so downstream
/// summaries differ only in wall time and in the `batch_width` /
/// `lanes_retired` columns.
///
/// `map` turns one cell's measured response into its sweep value; it
/// receives the cell's [`JobCtx`] (for index/seed-dependent work).
pub fn filter_grid_units<'a, T, F>(
    filter: &'a Filter,
    base: &'a CompiledCrn,
    samples: &'a [f64],
    specs: &'a [FilterGridCell],
    width: usize,
    map: F,
) -> Vec<SweepUnit<'a, T>>
where
    T: Send,
    F: Fn(&JobCtx, Vec<f64>) -> Result<T, JobError> + Send + Sync + Copy + 'a,
{
    let width = width.max(1);
    let scalar_unit = |cell: &'a FilterGridCell| {
        let (label, spec, hint) = cell;
        SweepUnit::Single(SweepJob::new(label.clone(), move |job| {
            let hook = job.step_hook();
            let sink = Cell::new(SimMetrics::default());
            let config = RunConfig {
                spec: spec.clone(),
                cycle_time_hint: *hint,
                step_hook: Some(&hook),
                metrics: Some(&sink),
                ..RunConfig::default()
            };
            let result = filter.respond_with(samples, &config, Some(&base.rebind(spec)));
            record_sim_metrics(job, sink.get());
            let measured = result.map_err(sync_job_error)?;
            map(job, measured)
        }))
    };
    specs
        .chunks(width)
        .flat_map(|chunk| {
            if chunk.len() < 2 {
                return chunk.iter().map(scalar_unit).collect::<Vec<_>>();
            }
            let labels = chunk.iter().map(|(label, _, _)| label.clone()).collect();
            vec![SweepUnit::Group(GroupJob::new(labels, move |ctxs| {
                let hooks: Vec<_> = ctxs.iter().map(JobCtx::step_hook).collect();
                let sinks: Vec<Cell<SimMetrics>> = ctxs
                    .iter()
                    .map(|_| Cell::new(SimMetrics::default()))
                    .collect();
                let rebound: Vec<CompiledCrn> =
                    chunk.iter().map(|(_, spec, _)| base.rebind(spec)).collect();
                let cells: Vec<BatchCell> = chunk
                    .iter()
                    .enumerate()
                    .map(|(k, (_, spec, hint))| BatchCell {
                        compiled: &rebound[k],
                        config: RunConfig {
                            spec: spec.clone(),
                            cycle_time_hint: *hint,
                            step_hook: Some(&hooks[k]),
                            metrics: Some(&sinks[k]),
                            ..RunConfig::default()
                        },
                    })
                    .collect();
                let mut workspace = BatchedOdeWorkspace::new();
                match filter.respond_batch(samples, &cells, &mut workspace) {
                    Ok(results) => results
                        .into_iter()
                        .zip(ctxs)
                        .zip(&sinks)
                        .map(|((result, job), sink)| {
                            record_sim_metrics(job, sink.get());
                            let measured = result.map_err(sync_job_error)?;
                            map(job, measured)
                        })
                        .collect(),
                    Err(shared) => {
                        for (job, sink) in ctxs.iter().zip(&sinks) {
                            record_sim_metrics(job, sink.get());
                        }
                        let err = sync_job_error(shared);
                        ctxs.iter().map(|_| Err(err.clone())).collect()
                    }
                }
            }))]
        })
        .collect()
}

/// Builds the sweep units for one stochastic replicate panel: `replicates`
/// SSA runs of a single compiled network under `rep`'s seed stream, packed
/// into lock-step [`GroupJob`]s of `width` consecutive replicates that
/// advance together through one [`run_ssa_batch`] call. The grouping is
/// sound by construction — every lane shares `rep`'s one
/// [`CompiledCrn`], so the batched engine's structural-hash check holds
/// trivially; callers batching across *different* networks must group by
/// [`Crn::structural_hash`] first, exactly as the ODE grid does. Width
/// `0`/`1` — and any leftover singleton chunk — fall back to plain scalar
/// [`SweepJob`]s driven through the [`Simulation`] builder.
///
/// Labels follow [`Replicator::jobs`]'s `"{label} rep={r} seed={seed}"`
/// convention, per-replicate seeds come from [`Replicator::seed`], and
/// step-hook budgets, recorded [`SimMetrics`] columns and job-order
/// results are all preserved: a panel built at any width reports the same
/// cells in the same order with bit-identical traces, so summaries differ
/// only in wall time and the `batch_width` / `lanes_retired` columns.
///
/// `opts` builds one replicate's [`SsaOptions`] from its seed, step hook
/// and metrics sink (a closure rather than a value because an options
/// value with a hook installed is not `Sync`); `map` turns one
/// replicate's trace result into its sweep value. `map` runs after the
/// cell's metrics are recorded, so interrupted replicates still report
/// the work they did.
#[allow(clippy::too_many_arguments)]
pub fn ssa_replicate_units<'a, T, O, F>(
    crn: &'a Crn,
    rep: Replicator<'a>,
    init: &'a State,
    schedule: &'a Schedule,
    opts: O,
    label: &str,
    replicates: usize,
    width: usize,
    map: F,
) -> Vec<SweepUnit<'a, T>>
where
    T: Send,
    O: for<'h> Fn(u64, StepHook<'h>, MetricsSink<'h>) -> SsaOptions<'h> + Send + Sync + Copy + 'a,
    F: Fn(&JobCtx, Result<Trace, SimError>) -> Result<T, JobError> + Send + Sync + Copy + 'a,
{
    let width = width.max(1);
    let compiled = rep.compiled();
    let seeds: Vec<(usize, u64)> = (0..replicates).map(|r| (r, rep.seed(r))).collect();
    seeds
        .chunks(width)
        .flat_map(|chunk| {
            if chunk.len() < 2 {
                return chunk
                    .iter()
                    .map(|&(r, seed)| {
                        let name = format!("{label} rep={r} seed={seed}");
                        SweepUnit::Single(SweepJob::new(name, move |job| {
                            let hook = job.step_hook();
                            let sink = Cell::new(SimMetrics::default());
                            let result = Simulation::new(crn, compiled)
                                .init(init)
                                .schedule(schedule)
                                .options(opts(seed, &hook, &sink))
                                .run();
                            record_sim_metrics(job, sink.get());
                            map(job, result)
                        }))
                    })
                    .collect::<Vec<_>>();
            }
            let labels = chunk
                .iter()
                .map(|&(r, seed)| format!("{label} rep={r} seed={seed}"))
                .collect();
            let lanes: Vec<(usize, u64)> = chunk.to_vec();
            vec![SweepUnit::Group(GroupJob::new(labels, move |ctxs| {
                let hooks: Vec<_> = ctxs.iter().map(JobCtx::step_hook).collect();
                let sinks: Vec<Cell<SimMetrics>> = ctxs
                    .iter()
                    .map(|_| Cell::new(SimMetrics::default()))
                    .collect();
                let batch: Vec<SsaBatchLane> = lanes
                    .iter()
                    .enumerate()
                    .map(|(k, &(_, seed))| SsaBatchLane {
                        compiled,
                        init,
                        schedule,
                        options: opts(seed, &hooks[k], &sinks[k]),
                    })
                    .collect();
                let mut workspace = BatchedStochWorkspace::new();
                run_ssa_batch(crn, &batch, &mut workspace)
                    .into_iter()
                    .zip(ctxs)
                    .zip(&sinks)
                    .map(|((result, job), sink)| {
                        record_sim_metrics(job, sink.get());
                        map(job, result)
                    })
                    .collect()
            }))]
        })
        .collect()
}

/// [`sync_job_error`] for raw simulator errors.
#[must_use]
pub fn sim_job_error(e: SimError) -> JobError {
    match e {
        SimError::Interrupted { time, reason } => {
            JobError::BudgetExceeded(format!("interrupted at t = {time}: {reason}"))
        }
        other => JobError::failed(other),
    }
}

/// An experiment entry: `(id, title, runner)`.
pub type Experiment = (&'static str, &'static str, fn(&ExpCtx) -> Report);

/// Every experiment, in presentation order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        (
            "e1",
            "chemical clock oscillation",
            experiments::e1_clock::run,
        ),
        (
            "e2",
            "delay-element chain transfer",
            experiments::e2_delay_chain::run,
        ),
        (
            "e3",
            "moving-average filter",
            experiments::e3_moving_average::run,
        ),
        ("e4", "binary counter", experiments::e4_counter::run),
        ("e5", "construct costs", experiments::e5_costs::run),
        (
            "e6",
            "rate-ratio robustness",
            experiments::e6_rate_ratio::run,
        ),
        (
            "e7",
            "per-reaction rate jitter",
            experiments::e7_rate_jitter::run,
        ),
        (
            "e8",
            "strand-displacement mapping",
            experiments::e8_dsd::run,
        ),
        (
            "e9",
            "clocked vs self-timed latency",
            experiments::e9_sync_vs_async::run,
        ),
        (
            "e10",
            "stochastic validity at small counts",
            experiments::e10_ssa::run,
        ),
        (
            "e11",
            "strand-displacement leak robustness",
            experiments::e11_leak::run,
        ),
        (
            "e12",
            "filter frequency response",
            experiments::e12_frequency::run,
        ),
        (
            "e13",
            "stiff clocked kinetics: implicit vs explicit tau-leaping",
            experiments::e13_stiff_clock::run,
        ),
        (
            "e14",
            "hybrid ODE/SSA vs pure SSA vs implicit tau on the stiff clock",
            experiments::e14_hybrid::run,
        ),
        (
            "a1",
            "ablation: sharpeners",
            experiments::a1_sharpeners::run,
        ),
        (
            "a2",
            "ablation: feedback coupling",
            experiments::a2_coupling::run,
        ),
    ]
}
