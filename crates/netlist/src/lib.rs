//! Hierarchical synchronous-circuit IR and textual netlist format.
//!
//! This crate is the *front half* of the molecular circuit compiler: a
//! backend-neutral IR for clocked circuits — registers with initial
//! values, weighted-sum / rational-scale / clamped-subtract combinational
//! ops, fan-out, named inputs and outputs, and child instances flattened
//! under dotted prefixes — plus a small line-oriented text format with
//! positioned errors. Lowering the IR onto the three-phase delay-element
//! reaction scheme lives in `molseq-sync` (`compile_netlist`), and the
//! legacy `SyncCircuit` / `SfgBuilder` builders are thin façades over the
//! [`Netlist`] defined here, so there is exactly one lowering path.
//!
//! # Quickstart
//!
//! ```
//! use molseq_netlist::parse_netlist;
//!
//! let net = parse_netlist(
//!     "module avg {\n\
//!      \x20 input x\n\
//!      \x20 reg z1\n\
//!      \x20 z1 <= x\n\
//!      \x20 output y = 1/2 * x + 1/2 * z1\n\
//!      }\n",
//! )
//! .unwrap();
//! assert_eq!(net.registers().len(), 1);
//! ```

#![warn(missing_docs)]

mod ir;
mod parse;

pub use ir::{Netlist, NetlistError, Node, NodeOp, Register};
pub use parse::{parse_netlist, parse_program, ParseError, Program};
