//! The textual netlist format.
//!
//! One statement per line; `#` starts a comment; blank lines are
//! skipped. A file holds one or more modules, and the **last** module is
//! the top by convention (like a classic HDL file reading bottom-up):
//!
//! ```text
//! module avg {
//!   input x
//!   reg z1                 # delay register, initial value 0
//!   z1 <= x                # next-cycle value (commits sum)
//!   wire t0 = 1/2 * x
//!   wire t1 = 1/2 * z1
//!   output y = t0 + t1
//! }
//! ```
//!
//! Statements:
//!
//! ```text
//! module NAME {                    open a module
//! }                                close it
//! input NAME                       external input port
//! const NAME = NUMBER              self-regenerating constant source
//! reg NAME [= NUMBER]              register, optional initial value
//! wire NAME = EXPR                 named combinational value
//! NAME <= EXPR                     commit: register next-value source
//!                                  (multiple commits to one register sum)
//! output NAME = EXPR               output port (read one cycle later)
//! inst NAME = MODULE(PORT = EXPR, ...)   child instance; its outputs
//!                                  are read as NAME.PORT (one-cycle delay)
//! ```
//!
//! Expressions are sums and clamped differences, left-associative:
//!
//! ```text
//! EXPR    := TERM { ("+" | "-") TERM }
//! TERM    := INT "*" PRIMARY | INT "/" INT "*" PRIMARY | PRIMARY
//! PRIMARY := IDENT | "(" EXPR ")"
//! ```
//!
//! `-` is the molecular clamped subtraction `max(a − b, 0)`. An integer
//! weight inside a multi-term sum folds into the transfer delivering the
//! term; a standalone `N * x` or `P/Q * x` becomes a scaling node.
//!
//! Every error carries a 1-based line and column.

use crate::ir::{Netlist, Node};
use std::collections::HashMap;
use std::fmt;

/// A parse or elaboration error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl ParseError {
    fn new(line: usize, col: usize, msg: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

// ---- lexer ----------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Eq,
    Comma,
    Plus,
    Minus,
    Star,
    Slash,
    /// The commit arrow `<=`.
    Arrow,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Number(s) => write!(f, "`{s}`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Arrow => write!(f, "`<=`"),
        }
    }
}

fn lex_line(line_no: usize, line: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let code = line.split('#').next().unwrap_or("");
    let mut toks = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let col = i + 1;
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '{' => {
                toks.push((Tok::LBrace, col));
                i += 1;
            }
            '}' => {
                toks.push((Tok::RBrace, col));
                i += 1;
            }
            '(' => {
                toks.push((Tok::LParen, col));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, col));
                i += 1;
            }
            '=' => {
                toks.push((Tok::Eq, col));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, col));
                i += 1;
            }
            '+' => {
                toks.push((Tok::Plus, col));
                i += 1;
            }
            '-' => {
                toks.push((Tok::Minus, col));
                i += 1;
            }
            '*' => {
                toks.push((Tok::Star, col));
                i += 1;
            }
            '/' => {
                toks.push((Tok::Slash, col));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Arrow, col));
                    i += 2;
                } else {
                    return Err(ParseError::new(
                        line_no,
                        col,
                        "stray `<` (did you mean `<=`?)",
                    ));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Ident(code[start..i].to_owned()), col));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                toks.push((Tok::Number(code[start..i].to_owned()), col));
            }
            c => {
                return Err(ParseError::new(
                    line_no,
                    col,
                    format!("unexpected character `{c}`"),
                ))
            }
        }
    }
    Ok(toks)
}

// ---- AST ------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Weight {
    One,
    Int(u32),
    Ratio(u32, u32),
}

#[derive(Debug, Clone)]
enum Primary {
    Ident(String),
    Paren(Box<Expr>),
}

#[derive(Debug, Clone)]
struct Term {
    weight: Weight,
    primary: Primary,
    line: usize,
    col: usize,
}

#[derive(Debug, Clone)]
struct Expr {
    first: Term,
    rest: Vec<(bool, Term)>, // true = `+`, false = `-`
}

#[derive(Debug, Clone)]
enum Stmt {
    Input {
        name: String,
    },
    Const {
        name: String,
        value: f64,
    },
    Reg {
        name: String,
        init: f64,
    },
    Wire {
        name: String,
        expr: Expr,
    },
    Commit {
        target: String,
        expr: Expr,
    },
    Output {
        name: String,
        expr: Expr,
    },
    Inst {
        name: String,
        module: String,
        connections: Vec<(String, Expr)>,
    },
}

#[derive(Debug, Clone)]
struct Module {
    name: String,
    stmts: Vec<(Stmt, usize, usize)>, // statement with its line/col
    line: usize,
}

/// A parsed netlist file: one or more modules, last one top by default.
#[derive(Debug, Clone)]
pub struct Program {
    modules: Vec<Module>,
}

// ---- statement parser -----------------------------------------------------

struct LineParser<'a> {
    toks: &'a [(Tok, usize)],
    pos: usize,
    line: usize,
}

impl<'a> LineParser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn col(&self) -> usize {
        self.toks
            .get(self.pos)
            .map_or_else(|| self.toks.last().map_or(1, |(_, c)| c + 1), |(_, c)| *c)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.col(), msg)
    }

    fn next(&mut self) -> Option<(Tok, usize)> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        match self.next() {
            Some((t, _)) if &t == want => Ok(()),
            Some((t, c)) => Err(ParseError::new(
                self.line,
                c,
                format!("expected {want}, found {t}"),
            )),
            None => Err(ParseError::new(
                self.line,
                self.col(),
                format!("expected {want}, found end of line"),
            )),
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, usize), ParseError> {
        match self.next() {
            Some((Tok::Ident(s), c)) => Ok((s, c)),
            Some((t, c)) => Err(ParseError::new(
                self.line,
                c,
                format!("expected {what}, found {t}"),
            )),
            None => Err(ParseError::new(
                self.line,
                self.col(),
                format!("expected {what}, found end of line"),
            )),
        }
    }

    fn number(&mut self, what: &str) -> Result<(String, usize), ParseError> {
        match self.next() {
            Some((Tok::Number(s), c)) => Ok((s, c)),
            Some((t, c)) => Err(ParseError::new(
                self.line,
                c,
                format!("expected {what}, found {t}"),
            )),
            None => Err(ParseError::new(
                self.line,
                self.col(),
                format!("expected {what}, found end of line"),
            )),
        }
    }

    fn f64_number(&mut self, what: &str) -> Result<f64, ParseError> {
        let (text, col) = self.number(what)?;
        text.parse::<f64>()
            .map_err(|_| ParseError::new(self.line, col, format!("bad number `{text}`")))
    }

    fn u32_number(&mut self, what: &str) -> Result<u32, ParseError> {
        let (text, col) = self.number(what)?;
        text.parse::<u32>().map_err(|_| {
            ParseError::new(self.line, col, format!("expected {what}, found `{text}`"))
        })
    }

    fn end(&mut self) -> Result<(), ParseError> {
        match self.next() {
            None => Ok(()),
            Some((t, c)) => Err(ParseError::new(
                self.line,
                c,
                format!("unexpected {t} after statement"),
            )),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.term()?;
        let mut rest = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.next();
                    rest.push((true, self.term()?));
                }
                Some(Tok::Minus) => {
                    self.next();
                    rest.push((false, self.term()?));
                }
                _ => break,
            }
        }
        Ok(Expr { first, rest })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let line = self.line;
        let col = self.col();
        let weight = if matches!(self.peek(), Some(Tok::Number(_))) {
            let p = self.u32_number("an integer weight")?;
            if matches!(self.peek(), Some(Tok::Slash)) {
                self.next();
                let q = self.u32_number("a denominator")?;
                self.expect(&Tok::Star)?;
                Weight::Ratio(p, q)
            } else {
                self.expect(&Tok::Star)?;
                Weight::Int(p)
            }
        } else {
            Weight::One
        };
        let primary = match self.next() {
            Some((Tok::Ident(s), _)) => Primary::Ident(s),
            Some((Tok::LParen, _)) => {
                let inner = self.expr()?;
                self.expect(&Tok::RParen)?;
                Primary::Paren(Box::new(inner))
            }
            Some((t, c)) => {
                return Err(ParseError::new(
                    self.line,
                    c,
                    format!("expected a signal name or `(`, found {t}"),
                ))
            }
            None => {
                return Err(ParseError::new(
                    self.line,
                    self.col(),
                    "expected a signal name or `(`, found end of line",
                ))
            }
        };
        Ok(Term {
            weight,
            primary,
            line,
            col,
        })
    }
}

/// Parses netlist source into its module list without elaborating.
///
/// # Errors
///
/// [`ParseError`] with the 1-based line and column of the first problem.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut modules: Vec<Module> = Vec::new();
    let mut current: Option<Module> = None;
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let toks = lex_line(line_no, raw)?;
        if toks.is_empty() {
            continue;
        }
        let mut p = LineParser {
            toks: &toks,
            pos: 0,
            line: line_no,
        };
        let head_col = p.col();
        match p.peek() {
            Some(Tok::Ident(kw)) if kw == "module" => {
                if current.is_some() {
                    return Err(p.err("`module` inside a module (missing `}`?)"));
                }
                p.next();
                let (name, ncol) = p.ident("a module name")?;
                if modules.iter().any(|m| m.name == name) {
                    return Err(ParseError::new(
                        line_no,
                        ncol,
                        format!("duplicate module `{name}`"),
                    ));
                }
                p.expect(&Tok::LBrace)?;
                p.end()?;
                current = Some(Module {
                    name,
                    stmts: Vec::new(),
                    line: line_no,
                });
            }
            Some(Tok::RBrace) => {
                p.next();
                p.end()?;
                match current.take() {
                    Some(m) => modules.push(m),
                    None => return Err(ParseError::new(line_no, head_col, "stray `}`")),
                }
            }
            _ => {
                let module = current.as_mut().ok_or_else(|| {
                    ParseError::new(line_no, head_col, "statement outside a module")
                })?;
                let stmt = parse_stmt(&mut p)?;
                p.end()?;
                module.stmts.push((stmt, line_no, head_col));
            }
        }
    }
    if let Some(m) = current {
        return Err(ParseError::new(
            m.line,
            1,
            format!("module `{}` is never closed", m.name),
        ));
    }
    if modules.is_empty() {
        return Err(ParseError::new(1, 1, "no modules in netlist"));
    }
    Ok(Program { modules })
}

fn parse_stmt(p: &mut LineParser<'_>) -> Result<Stmt, ParseError> {
    match p.peek() {
        Some(Tok::Ident(kw)) => match kw.as_str() {
            "input" => {
                p.next();
                let (name, _) = p.ident("an input name")?;
                Ok(Stmt::Input { name })
            }
            "const" => {
                p.next();
                let (name, _) = p.ident("a constant name")?;
                p.expect(&Tok::Eq)?;
                let value = p.f64_number("a value")?;
                Ok(Stmt::Const { name, value })
            }
            "reg" => {
                p.next();
                let (name, _) = p.ident("a register name")?;
                let init = if matches!(p.peek(), Some(Tok::Eq)) {
                    p.next();
                    p.f64_number("an initial value")?
                } else {
                    0.0
                };
                Ok(Stmt::Reg { name, init })
            }
            "wire" => {
                p.next();
                let (name, _) = p.ident("a wire name")?;
                p.expect(&Tok::Eq)?;
                let expr = p.expr()?;
                Ok(Stmt::Wire { name, expr })
            }
            "output" => {
                p.next();
                let (name, _) = p.ident("an output name")?;
                p.expect(&Tok::Eq)?;
                let expr = p.expr()?;
                Ok(Stmt::Output { name, expr })
            }
            "inst" => {
                p.next();
                let (name, _) = p.ident("an instance name")?;
                p.expect(&Tok::Eq)?;
                let (module, _) = p.ident("a module name")?;
                p.expect(&Tok::LParen)?;
                let mut connections = Vec::new();
                if !matches!(p.peek(), Some(Tok::RParen)) {
                    loop {
                        let (port, _) = p.ident("a port name")?;
                        p.expect(&Tok::Eq)?;
                        connections.push((port, p.expr()?));
                        match p.peek() {
                            Some(Tok::Comma) => {
                                p.next();
                            }
                            _ => break,
                        }
                    }
                }
                p.expect(&Tok::RParen)?;
                Ok(Stmt::Inst {
                    name,
                    module,
                    connections,
                })
            }
            _ => {
                // `name <= expr` commit
                let (target, _) = p.ident("a statement")?;
                p.expect(&Tok::Arrow)?;
                let expr = p.expr()?;
                Ok(Stmt::Commit { target, expr })
            }
        },
        _ => Err(p.err(
            "expected a statement (`input`, `const`, `reg`, `wire`, \
             `output`, `inst`, or `NAME <= EXPR`)",
        )),
    }
}

// ---- elaboration ----------------------------------------------------------

impl Program {
    /// Names of the parsed modules, in file order.
    #[must_use]
    pub fn module_names(&self) -> Vec<&str> {
        self.modules.iter().map(|m| m.name.as_str()).collect()
    }

    /// The top module's name (the last module in the file).
    #[must_use]
    pub fn top(&self) -> &str {
        &self.modules[self.modules.len() - 1].name
    }

    /// Elaborates module `name` (instantiating children recursively) into
    /// a flat [`Netlist`].
    ///
    /// # Errors
    ///
    /// [`ParseError`] for unknown names, duplicate definitions, bad
    /// commits, unknown modules/ports, or recursive instantiation.
    pub fn elaborate(&self, name: &str) -> Result<Netlist, ParseError> {
        let module = self
            .modules
            .iter()
            .find(|m| m.name == name)
            .ok_or_else(|| ParseError::new(1, 1, format!("no module named `{name}`")))?;
        let mut active = Vec::new();
        self.elaborate_module(module, &mut active)
    }

    fn elaborate_module(
        &self,
        module: &Module,
        active: &mut Vec<String>,
    ) -> Result<Netlist, ParseError> {
        if active.contains(&module.name) {
            return Err(ParseError::new(
                module.line,
                1,
                format!("recursive instantiation of module `{}`", module.name),
            ));
        }
        active.push(module.name.clone());
        let result = Elaborator {
            program: self,
            net: Netlist::new(),
            scope: HashMap::new(),
            regs: Vec::new(),
        }
        .run(module, active);
        active.pop();
        result
    }
}

struct Elaborator<'a> {
    program: &'a Program,
    net: Netlist,
    /// Signal name → node, in this module's namespace (inputs, consts,
    /// regs, wires, and `inst.port` reads).
    scope: HashMap<String, Node>,
    /// Registers declared in this module (commit targets).
    regs: Vec<String>,
}

impl Elaborator<'_> {
    fn define(
        &mut self,
        name: &str,
        node: Node,
        line: usize,
        col: usize,
    ) -> Result<(), ParseError> {
        if self.scope.insert(name.to_owned(), node).is_some() {
            return Err(ParseError::new(
                line,
                col,
                format!("`{name}` is already defined"),
            ));
        }
        Ok(())
    }

    fn run(mut self, module: &Module, active: &mut Vec<String>) -> Result<Netlist, ParseError> {
        for (stmt, line, col) in &module.stmts {
            let (line, col) = (*line, *col);
            match stmt {
                Stmt::Input { name } => {
                    let node = self.net.input(name);
                    self.define(name, node, line, col)?;
                }
                Stmt::Const { name, value } => {
                    let node = self.net.constant(name, *value);
                    self.define(name, node, line, col)?;
                    self.regs.push(name.clone());
                }
                Stmt::Reg { name, init } => {
                    let node = self.net.register(name, *init);
                    self.define(name, node, line, col)?;
                    self.regs.push(name.clone());
                }
                Stmt::Wire { name, expr } => {
                    let node = self.eval_expr(expr)?;
                    self.define(name, node, line, col)?;
                }
                Stmt::Commit { target, expr } => {
                    if !self.regs.iter().any(|r| r == target) {
                        let what = if self.scope.contains_key(target) {
                            format!("`{target}` is not a register (only `reg`/`const` take `<=`)")
                        } else {
                            format!("unknown register `{target}`")
                        };
                        return Err(ParseError::new(line, col, what));
                    }
                    let node = self.eval_expr(expr)?;
                    self.net
                        .commit(target, node)
                        .map_err(|e| ParseError::new(line, col, e.to_string()))?;
                }
                Stmt::Output { name, expr } => {
                    let node = self.eval_expr(expr)?;
                    self.net.output(name, node);
                }
                Stmt::Inst {
                    name,
                    module: child_name,
                    connections,
                } => {
                    let child = self
                        .program
                        .modules
                        .iter()
                        .find(|m| &m.name == child_name)
                        .ok_or_else(|| {
                            ParseError::new(line, col, format!("no module named `{child_name}`"))
                        })?;
                    let child_net = self.program.elaborate_module(child, active)?;
                    let mut bound = Vec::new();
                    for (port, expr) in connections {
                        bound.push((port.as_str(), self.eval_expr(expr)?));
                    }
                    let outs = self
                        .net
                        .instantiate(name, &child_net, &bound)
                        .map_err(|e| ParseError::new(line, col, e.to_string()))?;
                    for (port, node) in outs {
                        self.define(&format!("{name}.{port}"), node, line, col)?;
                    }
                }
            }
        }
        Ok(self.net)
    }

    /// Evaluates an expression to a node.
    ///
    /// `+`-runs group into one (weighted) sum; `-` closes the sum so far
    /// and subtracts the next term, left-associatively. A standalone
    /// weighted term becomes a scaling node; inside a multi-term sum an
    /// integer weight folds into the sum itself.
    fn eval_expr(&mut self, expr: &Expr) -> Result<Node, ParseError> {
        let mut acc: Option<Node> = None;
        let mut pending: Vec<&Term> = vec![&expr.first];
        for (plus, term) in &expr.rest {
            if *plus {
                pending.push(term);
            } else {
                let lhs = self.flush(acc.take(), &pending)?;
                pending.clear();
                let rhs = self.term_node(term)?;
                acc = Some(self.net.sub(lhs, rhs));
            }
        }
        self.flush(acc, &pending)
    }

    fn flush(&mut self, acc: Option<Node>, pending: &[&Term]) -> Result<Node, ParseError> {
        match (acc, pending.len()) {
            (Some(a), 0) => Ok(a),
            (None, 1) => self.term_node(pending[0]),
            (acc, _) => {
                let mut terms: Vec<(Node, u32)> = Vec::new();
                if let Some(a) = acc {
                    terms.push((a, 1));
                }
                for term in pending {
                    terms.push(self.term_pair(term)?);
                }
                Ok(self.net.add_weighted(&terms))
            }
        }
    }

    /// A term as a standalone node (weights become scaling nodes).
    fn term_node(&mut self, term: &Term) -> Result<Node, ParseError> {
        let node = self.primary_node(term)?;
        Ok(match term.weight {
            Weight::One | Weight::Int(1) => node,
            Weight::Int(p) => self.net.scale(node, p, 1),
            Weight::Ratio(p, q) => self.net.scale(node, p, q),
        })
    }

    /// A term as a `(node, weight)` pair for a weighted sum (integer
    /// weights fold; ratios still need a scaling node).
    fn term_pair(&mut self, term: &Term) -> Result<(Node, u32), ParseError> {
        Ok(match term.weight {
            Weight::One => (self.primary_node(term)?, 1),
            Weight::Int(p) => (self.primary_node(term)?, p),
            Weight::Ratio(p, q) => {
                let node = self.primary_node(term)?;
                (self.net.scale(node, p, q), 1)
            }
        })
    }

    fn primary_node(&mut self, term: &Term) -> Result<Node, ParseError> {
        match &term.primary {
            Primary::Ident(name) => self.scope.get(name).copied().ok_or_else(|| {
                ParseError::new(term.line, term.col, format!("unknown signal `{name}`"))
            }),
            Primary::Paren(inner) => self.eval_expr(inner),
        }
    }
}

/// Parses netlist source and elaborates the top (last) module.
///
/// # Errors
///
/// [`ParseError`] with the 1-based line and column of the first problem.
pub fn parse_netlist(src: &str) -> Result<Netlist, ParseError> {
    let program = parse_program(src)?;
    program.elaborate(program.top())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::NodeOp;

    const AVG: &str = "\
module avg {
  input x
  wire t0 = 1/2 * x
  reg z1
  z1 <= x
  wire t1 = 1/2 * z1
  output y = t0 + t1
}
";

    #[test]
    fn parses_the_averager() {
        let net = parse_netlist(AVG).unwrap();
        // input, scale, regout, scale, add — and no node for the output
        assert_eq!(net.node_count(), 5);
        assert_eq!(net.registers().len(), 1);
        assert_eq!(net.outputs().len(), 1);
        assert!(matches!(net.nodes()[4], NodeOp::Add { .. }));
    }

    #[test]
    fn statement_order_is_node_order() {
        let net = parse_netlist(AVG).unwrap();
        assert!(matches!(net.nodes()[0], NodeOp::Input { .. }));
        assert!(matches!(net.nodes()[1], NodeOp::Scale { p: 1, q: 2, .. }));
        assert!(matches!(net.nodes()[2], NodeOp::RegisterOut { reg: 0 }));
        assert!(matches!(net.nodes()[3], NodeOp::Scale { p: 1, q: 2, .. }));
    }

    #[test]
    fn unknown_signal_has_position() {
        let err = parse_netlist("module m {\n  wire y = nope\n}\n").unwrap_err();
        assert_eq!((err.line, err.col), (2, 12));
        assert!(err.msg.contains("nope"), "{}", err.msg);
    }

    #[test]
    fn commit_to_wire_is_rejected() {
        let src = "module m {\n  input x\n  wire w = x\n  w <= x\n}\n";
        let err = parse_netlist(src).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.msg.contains("not a register"), "{}", err.msg);
    }

    #[test]
    fn weighted_sum_folds_integer_weights() {
        let src = "module m {\n  input a\n  input b\n  wire s = 2*a + b\n  output y = s\n}\n";
        let net = parse_netlist(src).unwrap();
        let add = net
            .nodes()
            .iter()
            .find_map(|op| match op {
                NodeOp::Add { terms } => Some(terms.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(add.iter().map(|&(_, w)| w).collect::<Vec<_>>(), vec![2, 1]);
    }

    #[test]
    fn subtraction_is_left_associative() {
        let src = "module m {\n  input a\n  input b\n  input c\n  wire d = a - b - c\n  output y = d\n}\n";
        let net = parse_netlist(src).unwrap();
        let subs = net
            .nodes()
            .iter()
            .filter(|op| matches!(op, NodeOp::Sub { .. }))
            .count();
        assert_eq!(subs, 2);
    }

    #[test]
    fn instances_flatten_with_dotted_reads() {
        let src = format!(
            "{AVG}\nmodule top {{\n  input u\n  inst a = avg(x = u)\n  output v = a.y\n}}\n"
        );
        let net = parse_netlist(&src).unwrap();
        let regs: Vec<&str> = net.registers().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(regs, vec!["a.z1", "a.y"]);
        assert_eq!(net.outputs().len(), 1);
    }

    #[test]
    fn recursive_instantiation_is_rejected() {
        let src = "module a {\n  input x\n  inst s = a(x = x)\n}\n";
        let err = parse_netlist(src).unwrap_err();
        assert!(err.msg.contains("recursive"), "{}", err.msg);
    }

    #[test]
    fn unclosed_module_is_rejected() {
        let err = parse_program("module m {\n  input x\n").unwrap_err();
        assert!(err.msg.contains("never closed"), "{}", err.msg);
    }

    #[test]
    fn bad_tokens_carry_columns() {
        let err = parse_netlist("module m {\n  wire y = $\n}\n").unwrap_err();
        assert_eq!((err.line, err.col), (2, 12));
    }

    #[test]
    fn last_module_is_top() {
        let src = "module a {\n  input x\n  output y = x\n}\nmodule b {\n  input u\n  output v = 2 * u\n}\n";
        let program = parse_program(src).unwrap();
        assert_eq!(program.top(), "b");
        assert_eq!(program.module_names(), vec!["a", "b"]);
        let net = program.elaborate("b").unwrap();
        assert!(matches!(net.nodes()[1], NodeOp::Scale { p: 2, q: 1, .. }));
    }
}
