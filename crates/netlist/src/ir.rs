//! The flat circuit IR: an expression DAG over inputs and register reads,
//! plus the register (delay-element) table and named output ports.
//!
//! A [`Netlist`] is *backend-neutral*: it records what the circuit
//! computes (weighted sums, rational scalings, clamped subtractions,
//! registers with initial values) and says nothing about reactions,
//! colors, or phases. Lowering to the three-phase delay-element reaction
//! scheme lives in `molseq-sync` (`compile_netlist`), which consumes this
//! IR; `SyncCircuit` and `SfgBuilder` are thin façades over it.
//!
//! Hierarchy is handled by *flattening at instantiation*:
//! [`Netlist::instantiate`] inlines a child netlist under a dotted name
//! prefix, binding the child's input ports to parent nodes and exposing
//! the child's outputs as parent registers (read with one cycle of
//! delay, exactly like a top-level output port).

use std::fmt;

/// A handle to a value in the expression DAG of a [`Netlist`].
///
/// Nodes are plain indices into the owning netlist; using a node with a
/// different netlist is caught at compile time (`UnknownNode`), not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node(usize);

impl Node {
    /// The node's index in the owning netlist's DAG.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a handle from a raw index. For compiler back-ends walking
    /// the DAG; an out-of-range index is rejected when the netlist is
    /// compiled.
    #[must_use]
    pub fn from_index(index: usize) -> Node {
        Node(index)
    }
}

/// One operation of the expression DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeOp {
    /// An external input port; one sample per clock cycle is injected by
    /// the harness.
    Input {
        /// Port name.
        name: String,
    },
    /// The read value of register `reg` (index into
    /// [`Netlist::registers`]).
    RegisterOut {
        /// Register index.
        reg: usize,
    },
    /// A weighted sum `Σ wᵢ·termᵢ` with integer weights `wᵢ ≥ 1`.
    /// Weight-1 terms are plain addition; larger weights fold the
    /// multiplication into the transfer that delivers the term.
    Add {
        /// `(term, weight)` pairs.
        terms: Vec<(Node, u32)>,
    },
    /// Rational scaling by `p/q`.
    Scale {
        /// Scaled value.
        src: Node,
        /// Numerator (`≥ 1`).
        p: u32,
        /// Denominator (`1..=3` — at most a three-body collision).
        q: u32,
    },
    /// Clamped subtraction `max(minuend − subtrahend, 0)`.
    Sub {
        /// Value subtracted from.
        minuend: Node,
        /// Value subtracted.
        subtrahend: Node,
    },
}

/// A register (delay element): holds a value for one clock cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Register {
    /// Register name (unique among ports at compile time).
    pub name: String,
    /// Next-value sources: each source's value commits into the register,
    /// so multiple sources sum naturally. Empty means an unbound feedback
    /// register, rejected at compile time.
    pub sources: Vec<Node>,
    /// Initial stored value.
    pub init: f64,
    /// The `RegisterOut` node reading this register.
    pub out: Node,
}

/// Errors from netlist construction and instantiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// `bind`/`commit` named a register that does not exist.
    UnknownRegister {
        /// The missing register name.
        name: String,
    },
    /// `instantiate` connected a port the child does not declare.
    UnknownInput {
        /// The connection's port name.
        name: String,
    },
    /// `instantiate` left a child input port unconnected.
    UnconnectedInput {
        /// The unconnected port name.
        name: String,
    },
    /// A child netlist referenced a node index it does not contain.
    InvalidNode {
        /// The out-of-range index.
        index: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownRegister { name } => {
                write!(f, "unknown register `{name}`")
            }
            NetlistError::UnknownInput { name } => {
                write!(f, "child module has no input port `{name}`")
            }
            NetlistError::UnconnectedInput { name } => {
                write!(f, "child input port `{name}` is unconnected")
            }
            NetlistError::InvalidNode { index } => {
                write!(f, "child netlist references missing node {index}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// The circuit IR builder. See the [module docs](self) for the model.
///
/// Construction methods never fail except where a *name* must resolve
/// ([`bind`](Self::bind), [`commit`](Self::commit)) or a child is
/// instantiated; structural validation (weights, scale ranges, foreign
/// nodes, combinational cycles) happens when the netlist is lowered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    nodes: Vec<NodeOp>,
    registers: Vec<Register>,
    inputs: Vec<(String, Node)>,
    outputs: Vec<(String, Node)>,
}

impl Netlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Netlist::default()
    }

    fn push(&mut self, op: NodeOp) -> Node {
        self.nodes.push(op);
        Node(self.nodes.len() - 1)
    }

    /// Declares an external input port.
    pub fn input(&mut self, name: &str) -> Node {
        let node = self.push(NodeOp::Input { name: name.into() });
        self.inputs.push((name.into(), node));
        node
    }

    /// Declares a register with no next-value source yet (a feedback
    /// register; supply the source later with [`bind`](Self::bind) or
    /// [`commit`](Self::commit)). Returns the node reading the register's
    /// *current* value.
    pub fn register(&mut self, name: &str, init: f64) -> Node {
        let reg = self.registers.len();
        let out = self.push(NodeOp::RegisterOut { reg });
        self.registers.push(Register {
            name: name.into(),
            sources: Vec::new(),
            init,
            out,
        });
        out
    }

    /// Declares a delay element: the returned node reads the register's
    /// current value; its next value is `source`.
    pub fn delay(&mut self, name: &str, source: Node, init: f64) -> Node {
        let out = self.register(name, init);
        let reg = self.registers.len() - 1;
        self.registers[reg].sources = vec![source];
        out
    }

    /// Declares a constant source: a register initialized to `value` that
    /// feeds itself, regenerating the quantity every cycle.
    pub fn constant(&mut self, name: &str, value: f64) -> Node {
        let out = self.register(name, value);
        let reg = self.registers.len() - 1;
        self.registers[reg].sources = vec![out];
        out
    }

    /// Points register `name` at a (new) next-value source, replacing any
    /// previous sources.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownRegister`] if no register has that name.
    pub fn bind(&mut self, name: &str, source: Node) -> Result<(), NetlistError> {
        let reg = self.register_mut(name)?;
        reg.sources = vec![source];
        Ok(())
    }

    /// Adds a further next-value source to register `name`: the committed
    /// values of all sources **sum** into the register.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownRegister`] if no register has that name.
    pub fn commit(&mut self, name: &str, source: Node) -> Result<(), NetlistError> {
        let reg = self.register_mut(name)?;
        reg.sources.push(source);
        Ok(())
    }

    fn register_mut(&mut self, name: &str) -> Result<&mut Register, NetlistError> {
        self.registers
            .iter_mut()
            .find(|r| r.name == name)
            .ok_or_else(|| NetlistError::UnknownRegister { name: name.into() })
    }

    /// Sums any number of values with unit weights.
    pub fn add(&mut self, terms: &[Node]) -> Node {
        let terms = terms.iter().map(|&t| (t, 1)).collect();
        self.push(NodeOp::Add { terms })
    }

    /// A weighted sum `Σ wᵢ·termᵢ`. Integer weights fold into the
    /// transfers delivering each term (no extra scaling node); a weight
    /// of 0 is rejected at compile time.
    pub fn add_weighted(&mut self, terms: &[(Node, u32)]) -> Node {
        self.push(NodeOp::Add {
            terms: terms.to_vec(),
        })
    }

    /// Multiplies a value by the rational `p/q` (with `q ∈ 1..=3`).
    pub fn scale(&mut self, src: Node, p: u32, q: u32) -> Node {
        self.push(NodeOp::Scale { src, p, q })
    }

    /// Clamped subtraction `max(minuend − subtrahend, 0)`.
    pub fn sub(&mut self, minuend: Node, subtrahend: Node) -> Node {
        self.push(NodeOp::Sub {
            minuend,
            subtrahend,
        })
    }

    /// Declares an output port fed by `source`.
    pub fn output(&mut self, name: &str, source: Node) {
        self.outputs.push((name.into(), source));
    }

    /// Number of expression nodes (diagnostic).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The expression DAG in creation order.
    #[must_use]
    pub fn nodes(&self) -> &[NodeOp] {
        &self.nodes
    }

    /// The register table in creation order.
    #[must_use]
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// Declared input ports (name, node) in creation order.
    #[must_use]
    pub fn inputs(&self) -> &[(String, Node)] {
        &self.inputs
    }

    /// Declared output ports (name, source node) in creation order.
    #[must_use]
    pub fn outputs(&self) -> &[(String, Node)] {
        &self.outputs
    }

    /// Decomposes the netlist into its tables, for compiler back-ends.
    #[must_use]
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (
        Vec<NodeOp>,
        Vec<Register>,
        Vec<(String, Node)>,
        Vec<(String, Node)>,
    ) {
        (self.nodes, self.registers, self.inputs, self.outputs)
    }

    /// Inlines `child` into this netlist under `prefix`.
    ///
    /// Every child register becomes a parent register named
    /// `"{prefix}.{name}"`; every child input port must be connected to a
    /// parent node via `connections`; every child output port becomes a
    /// parent register `"{prefix}.{name}"` (initial value 0) holding the
    /// output value, so instance outputs — like top-level outputs — are
    /// read with one cycle of delay. Returns the child's output ports as
    /// `(unprefixed name, parent read node)` pairs in declaration order.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::UnknownInput`] — a connection names a port the
    ///   child does not declare.
    /// * [`NetlistError::UnconnectedInput`] — a child input got no
    ///   connection.
    /// * [`NetlistError::InvalidNode`] — the child references a node it
    ///   does not contain (only possible with hand-forged handles).
    pub fn instantiate(
        &mut self,
        prefix: &str,
        child: &Netlist,
        connections: &[(&str, Node)],
    ) -> Result<Vec<(String, Node)>, NetlistError> {
        for (name, _) in connections {
            if !child.inputs.iter().any(|(n, _)| n == name) {
                return Err(NetlistError::UnknownInput {
                    name: (*name).to_owned(),
                });
            }
        }

        // Pre-create the child's registers so child register indices map
        // to parent indices by a fixed offset regardless of node order.
        let reg_base = self.registers.len();
        for reg in &child.registers {
            self.registers.push(Register {
                name: format!("{prefix}.{}", reg.name),
                sources: Vec::new(),
                init: reg.init,
                out: Node(usize::MAX), // fixed when the RegisterOut maps
            });
        }

        // Map child nodes to parent nodes in child creation order; every
        // operand of a child op precedes the op in that order.
        let mut map: Vec<Option<Node>> = vec![None; child.nodes.len()];
        let resolve = |map: &[Option<Node>], node: Node| -> Result<Node, NetlistError> {
            map.get(node.0)
                .copied()
                .flatten()
                .ok_or(NetlistError::InvalidNode { index: node.0 })
        };
        for (i, op) in child.nodes.iter().enumerate() {
            let node = match op {
                NodeOp::Input { name } => connections
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, node)| node)
                    .ok_or_else(|| NetlistError::UnconnectedInput { name: name.clone() })?,
                NodeOp::RegisterOut { reg } => {
                    let node = self.push(NodeOp::RegisterOut {
                        reg: reg_base + reg,
                    });
                    self.registers[reg_base + reg].out = node;
                    node
                }
                NodeOp::Add { terms } => {
                    let terms = terms
                        .iter()
                        .map(|&(t, w)| Ok((resolve(&map, t)?, w)))
                        .collect::<Result<Vec<_>, NetlistError>>()?;
                    self.push(NodeOp::Add { terms })
                }
                NodeOp::Scale { src, p, q } => {
                    let src = resolve(&map, *src)?;
                    self.push(NodeOp::Scale { src, p: *p, q: *q })
                }
                NodeOp::Sub {
                    minuend,
                    subtrahend,
                } => {
                    let minuend = resolve(&map, *minuend)?;
                    let subtrahend = resolve(&map, *subtrahend)?;
                    self.push(NodeOp::Sub {
                        minuend,
                        subtrahend,
                    })
                }
            };
            map[i] = Some(node);
        }

        for (r, reg) in child.registers.iter().enumerate() {
            self.registers[reg_base + r].sources = reg
                .sources
                .iter()
                .map(|&s| resolve(&map, s))
                .collect::<Result<Vec<_>, NetlistError>>()?;
        }

        let mut outs = Vec::new();
        for (name, src) in &child.outputs {
            let src = resolve(&map, *src)?;
            let out = self.delay(&format!("{prefix}.{name}"), src, 0.0);
            outs.push((name.clone(), out));
        }
        Ok(outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn averager() -> Netlist {
        let mut n = Netlist::new();
        let x = n.input("x");
        let d = n.delay("d", x, 0.0);
        let s = n.add(&[x, d]);
        let y = n.scale(s, 1, 2);
        n.output("y", y);
        n
    }

    #[test]
    fn builder_records_tables() {
        let n = averager();
        assert_eq!(n.node_count(), 4);
        assert_eq!(n.registers().len(), 1);
        assert_eq!(n.inputs().len(), 1);
        assert_eq!(n.outputs(), &[("y".to_owned(), Node(3))]);
    }

    #[test]
    fn bind_and_commit_resolve_by_name() {
        let mut n = Netlist::new();
        let x = n.input("x");
        let acc = n.register("acc", 0.0);
        n.bind("acc", x).unwrap();
        n.commit("acc", acc).unwrap();
        assert_eq!(n.registers()[0].sources, vec![x, acc]);
        assert!(matches!(
            n.bind("nope", x),
            Err(NetlistError::UnknownRegister { .. })
        ));
    }

    #[test]
    fn instantiate_flattens_with_prefix() {
        let child = averager();
        let mut top = Netlist::new();
        let u = top.input("u");
        let outs = top.instantiate("avg", &child, &[("x", u)]).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, "y");
        // child register + output register, both prefixed
        let names: Vec<&str> = top.registers().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["avg.d", "avg.y"]);
        // the child's input node created no parent node
        assert_eq!(top.node_count(), 1 + 3 + 1);
    }

    #[test]
    fn instantiate_rejects_bad_connections() {
        let child = averager();
        let mut top = Netlist::new();
        let u = top.input("u");
        assert!(matches!(
            top.instantiate("a", &child, &[("nope", u)]),
            Err(NetlistError::UnknownInput { .. })
        ));
        assert!(matches!(
            top.instantiate("a", &child, &[]),
            Err(NetlistError::UnconnectedInput { .. })
        ));
    }

    #[test]
    fn weighted_add_keeps_weights() {
        let mut n = Netlist::new();
        let x = n.input("x");
        let d = n.delay("d", x, 0.0);
        let s = n.add_weighted(&[(x, 2), (d, 1)]);
        match &n.nodes()[s.index()] {
            NodeOp::Add { terms } => assert_eq!(terms, &vec![(x, 2), (d, 1)]),
            other => panic!("expected Add, got {other:?}"),
        }
    }
}
