//! Offline stand-in for `serde`.
//!
//! The workspace vendors this minimal implementation so builds need no
//! network access. It keeps serde's *shape* — `#[derive(Serialize,
//! Deserialize)]`, the `Serialize`/`Deserialize<'de>` trait bounds — while
//! implementing only what the workspace actually exercises: rendering a
//! value as a JSON document.
//!
//! [`Serialize`] here is a single-method trait that appends a JSON
//! rendering to a `String` (plus a provided [`Serialize::to_json`]
//! convenience). [`Deserialize`] is a marker trait: nothing in the
//! workspace parses serialized data back, but downstream code is written
//! against the standard bound `for<'de> Deserialize<'de>` so swapping the
//! real serde back in is a manifest change only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A type that can render itself as JSON.
pub trait Serialize {
    /// Appends this value's JSON rendering to `out`.
    fn write_json(&self, out: &mut String);

    /// This value rendered as a standalone JSON document.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Marker for types that could be deserialized. The vendored stub never
/// parses; the trait exists so standard serde bounds keep compiling.
pub trait Deserialize<'de>: Sized {}

/// Escapes and quotes `s` as a JSON string into `out`.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_display {
    ($($ty:ty),* $(,)?) => {$(
        impl Serialize for $ty {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl Serialize for f64 {
    /// Finite values render as numbers; non-finite values as `null`
    /// (matching `serde_json`'s default behaviour).
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&format!("{self:?}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&format!("{self:?}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    /// Keys are emitted in sorted order so the rendering is deterministic.
    fn write_json(&self, out: &mut String) {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        out.push('{');
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(k, out);
            out.push(':');
            self[*k].write_json(out);
        }
        out.push('}');
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(k, out);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(3u32.to_json(), "3");
        assert_eq!(true.to_json(), "true");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!("a\"b".to_string().to_json(), "\"a\\\"b\"");
    }

    #[test]
    fn containers_render() {
        assert_eq!(vec![1u32, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(Some(1u32).to_json(), "1");
        assert_eq!(None::<u32>.to_json(), "null");
        let mut m = std::collections::HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        assert_eq!(m.to_json(), "{\"a\":1,\"b\":2}");
    }
}
