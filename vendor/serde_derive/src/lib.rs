//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored serde stub by hand-parsing the item's token stream (the real
//! `syn`/`quote` stack is unavailable offline). Supports the shapes this
//! workspace derives on: non-generic structs (named, tuple, unit) and
//! enums (unit, tuple, and struct variants).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed skeleton of a `struct` or `enum` item.
struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize` (the vendored stub's JSON-writing trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = serialize_body(&item);
    format!(
        "impl ::serde::Serialize for {} {{\n\
         fn write_json(&self, out: &mut ::std::string::String) {{ {body} }}\n\
         }}",
        item.name
    )
    .parse()
    .expect("generated impl parses")
}

/// Derives `serde::Deserialize` (a marker impl under the vendored stub).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {} {{}}", item.name)
        .parse()
        .expect("generated impl parses")
}

fn serialize_body(item: &Item) -> String {
    match &item.shape {
        Shape::Unit => "out.push_str(\"null\");".to_owned(),
        Shape::Tuple(1) => "::serde::Serialize::write_json(&self.0, out);".to_owned(),
        Shape::Tuple(n) => {
            let mut body = String::from("out.push('[');");
            for i in 0..*n {
                if i > 0 {
                    body.push_str("out.push(',');");
                }
                body.push_str(&format!("::serde::Serialize::write_json(&self.{i}, out);"));
            }
            body.push_str("out.push(']');");
            body
        }
        Shape::Named(fields) => named_fields_body(fields, "self."),
        Shape::Enum(variants) => {
            let mut body = String::from("match self {");
            for v in variants {
                let vn = &v.name;
                let ty = &item.name;
                match &v.shape {
                    VariantShape::Unit => {
                        body.push_str(&format!("{ty}::{vn} => out.push_str(\"\\\"{vn}\\\"\"),"));
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        body.push_str(&format!(
                            "{ty}::{vn}({}) => {{ out.push_str(\"{{\\\"{vn}\\\":\");",
                            binds.join(", ")
                        ));
                        if *n == 1 {
                            body.push_str("::serde::Serialize::write_json(__f0, out);");
                        } else {
                            body.push_str("out.push('[');");
                            for (i, b) in binds.iter().enumerate() {
                                if i > 0 {
                                    body.push_str("out.push(',');");
                                }
                                body.push_str(&format!(
                                    "::serde::Serialize::write_json({b}, out);"
                                ));
                            }
                            body.push_str("out.push(']');");
                        }
                        body.push_str("out.push('}'); }");
                    }
                    VariantShape::Named(fields) => {
                        body.push_str(&format!(
                            "{ty}::{vn} {{ {} }} => {{ out.push_str(\"{{\\\"{vn}\\\":\");",
                            fields.join(", ")
                        ));
                        body.push_str(&named_fields_body(fields, ""));
                        body.push_str("out.push('}'); }");
                    }
                }
            }
            body.push('}');
            body
        }
    }
}

/// JSON-object body for named fields; `prefix` is `"self."` for structs
/// and empty for match-bound enum fields.
fn named_fields_body(fields: &[String], prefix: &str) -> String {
    let mut body = String::from("out.push('{');");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            body.push_str("out.push(',');");
        }
        body.push_str(&format!(
            "out.push_str(\"\\\"{f}\\\":\");\
             ::serde::Serialize::write_json(&{prefix}{f}, out);"
        ));
    }
    body.push_str("out.push('}');");
    body
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) / pub(super)
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("the vendored serde_derive does not support generic types");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

/// Field names of a named-field body, in declaration order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.next() else {
            break;
        };
        fields.push(id.to_string());
        // Consume `:` and the type, up to a top-level comma.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_any = false;
    let mut angle_depth = 0i32;
    let mut field_has_tokens = false;
    for tok in stream {
        saw_any = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    field_has_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        field_has_tokens = true;
    }
    if !saw_any {
        0
    } else {
        count + usize::from(field_has_tokens)
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.next() else {
            break;
        };
        let name = id.to_string();
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip an optional discriminant and the trailing comma.
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}
