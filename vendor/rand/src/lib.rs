//! Offline stand-in for the `rand` crate.
//!
//! The workspace vendors this tiny implementation so that builds need no
//! network access. It provides exactly the subset of the `rand` API the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random`] for the primitive types simulations draw.
//!
//! `StdRng` is xoshiro256** seeded through SplitMix64 — deterministic in
//! the seed, with statistical quality far beyond what the stochastic
//! simulators' tolerance checks require. It is **not** cryptographically
//! secure, which matches how the workspace uses randomness (simulation
//! only).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of uniformly distributed values.
///
/// (Upstream `rand` splits this across `Rng`/`RngCore`; the workspace only
/// ever calls `random`, so one extension trait suffices.)
pub trait RngExt {
    /// The next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard uniform distribution
    /// (`[0, 1)` for floats, the full range for integers).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(&mut |/* rng */| self.next_u64())
    }
}

/// Types with a standard uniform distribution this stub can sample.
pub trait Standard: Sized {
    /// Produces one sample given a source of raw 64-bit words.
    fn sample(bits: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample(bits: &mut dyn FnMut() -> u64) -> Self {
        (bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn sample(bits: &mut dyn FnMut() -> u64) -> Self {
        (bits() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample(bits: &mut dyn FnMut() -> u64) -> Self {
        bits()
    }
}

impl Standard for u32 {
    fn sample(bits: &mut dyn FnMut() -> u64) -> Self {
        (bits() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(bits: &mut dyn FnMut() -> u64) -> Self {
        bits() >> 63 == 1
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Deterministic in the seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expands the 64-bit seed into the full 256-bit
            // state; it cannot produce the all-zero state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = StdRng::seed_from_u64(0);
        // state must not be all-zero (xoshiro's fixed point)
        let first: u64 = rng.random();
        let second: u64 = rng.random();
        assert_ne!(first, second);
    }

    #[test]
    fn other_primitives_sample() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u32 = rng.random();
        let _: f32 = rng.random();
        let _: bool = rng.random();
    }
}
