//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the subset of the
//! criterion API this workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`bench_function`/
//! `bench_with_input`/`finish`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Each benchmark runs one warm-up iteration, then `sample_size` timed
//! iterations, and prints min/mean/max per-iteration wall time. There is
//! no statistical analysis, outlier rejection, or HTML report — this stub
//! exists so `cargo bench` works without network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    /// True when cargo runs the bench target in test mode (`--test`):
    /// benchmarks are checked with a single iteration instead of timed.
    test_mode: bool,
}

impl Criterion {
    /// Creates a harness, inspecting the process arguments the way cargo
    /// invokes bench targets (`--test` in test mode).
    #[must_use]
    pub fn from_args() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let test_mode = self.test_mode;
        run_one(&name.into(), 10, test_mode, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, self.criterion.test_mode, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.render());
        run_one(&id, self.sample_size, self.criterion.test_mode, |b| {
            f(b, input);
        });
        self
    }

    /// Closes the group (a no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier with a parameter, e.g. `derivative/24`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    #[must_use]
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Drives the closure under measurement.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, discarding its output via [`black_box`].
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(id: &str, samples: usize, test_mode: bool, mut f: impl FnMut(&mut Bencher)) {
    if test_mode {
        // `cargo test` runs bench targets with `--test`: check the
        // benchmark executes, skip the timing loop.
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{id}: ok (test mode)");
        return;
    }
    // Warm-up.
    let mut b = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed);
    }
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    let mean = times.iter().sum::<Duration>() / samples.max(1) as u32;
    println!("{id}: min {min:.2?}  mean {mean:.2?}  max {max:.2?}  ({samples} samples)");
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = 0;
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("p", 7), &7, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
        ran += 1;
        assert_eq!(ran, 1);
    }
}
