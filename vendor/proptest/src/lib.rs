//! Offline stand-in for `proptest`.
//!
//! A miniature property-testing framework with the subset of the proptest
//! API this workspace uses: the [`strategy::Strategy`] trait with
//! `prop_map`/`prop_filter_map`, range and tuple strategies,
//! [`strategy::Just`], [`collection::vec`], `prop_oneof!`, and the
//! `proptest!` test macro with `ProptestConfig`.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs'
//!   `Debug` rendering instead of minimizing them.
//! * **Deterministic seeding.** Each test's generator is seeded from a
//!   hash of the test's name, so failures reproduce exactly across runs.
//! * Assertion macros panic directly rather than threading `Result`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Configuration accepted by `proptest!`'s `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for API compatibility; the stub never persists failures.
    pub failure_persistence: Option<()>,
    /// Accepted for API compatibility; the stub never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    /// 256 cases, like the real crate.
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            failure_persistence: None,
            max_shrink_iters: 1024,
        }
    }
}

/// The deterministic test runner internals used by the macros.
pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// A generator seeded deterministically from the test's name.
    #[must_use]
    pub fn rng_for(test_name: &str) -> TestRng {
        // FNV-1a over the name: stable across runs and platforms.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(hash)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// A source of random values of one type.
    ///
    /// The stub's strategies sample directly; there is no shrinking tree.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Maps sampled values through `f`, resampling when it returns
        /// `None`. Panics (with `reason`) if 1000 consecutive samples are
        /// all rejected.
        fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                reason,
                f,
            }
        }
    }

    /// Boxes a strategy, erasing its concrete type (used by `prop_oneof!`).
    #[must_use]
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// A strategy that always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: &'static str,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<O>,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            for _ in 0..1000 {
                if let Some(v) = (self.f)(self.inner.sample(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map rejected 1000 consecutive samples: {}",
                self.reason
            );
        }
    }

    /// A uniform choice among boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union; panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.random::<u64>() % self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.random::<u64>() % span) as $ty
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.random::<u64>() % span) as $ty
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// A strategy producing `Vec`s with lengths drawn from `len` and
    /// elements drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vectors of `element` samples with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.random::<u64>() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// A uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($strat) ),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its inputs `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($pat,)+) = (
                    $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )+
                );
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::rng_for("ranges");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u32..7), &mut rng);
            assert!((3..7).contains(&v));
            let w = Strategy::sample(&(5u32..=120), &mut rng);
            assert!((5..=120).contains(&w));
        }
    }

    #[test]
    fn oneof_map_and_vec_compose() {
        let strat = collection::vec(
            prop_oneof![Just(1u32), (10u32..20).prop_map(|v| v * 2)],
            1..4,
        );
        let mut rng = crate::test_runner::rng_for("compose");
        for _ in 0..200 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!(!v.is_empty() && v.len() < 4);
            for x in v {
                assert!(x == 1 || (20..40).contains(&x));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, failure_persistence: None, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_samples_and_asserts(x in 1u32..10, v in collection::vec(0usize..3, 1..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }
}
