//! The paper's running DSP example: a two-tap moving-average filter
//! `y(n) = (x(n) + x(n−1)) / 2` built from molecular reactions, compared
//! against the ideal filter response sample by sample.
//!
//! ```sh
//! cargo run --release --example moving_average
//! ```

use molseq::dsp::{moving_average, rmse};
use molseq::sync::{ClockSpec, RunConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let filter = moving_average(2, ClockSpec::default())?;
    println!(
        "{}: {} species, {} reactions",
        filter.description(),
        filter.system().stats().species,
        filter.system().stats().reactions
    );

    // A noisy step: the filter should smooth the transitions.
    let samples = [
        10.0, 50.0, 10.0, 50.0, 10.0, 80.0, 80.0, 80.0, 20.0, 20.0, 20.0, 60.0,
    ];
    let measured = filter.respond_with(&samples, &RunConfig::default(), None)?;
    let ideal = filter.ideal_response(&samples);

    println!("\n    n |    x(n) | molecular y(n) | ideal y(n) |   error");
    for n in 0..samples.len() {
        println!(
            "{n:5} | {:7.2} | {:14.3} | {:10.3} | {:+7.3}",
            samples[n],
            measured[n],
            ideal[n],
            measured[n] - ideal[n]
        );
    }
    println!("\nRMS error: {:.4}", rmse(&measured, &ideal));
    Ok(())
}
