//! Compile an abstract reaction program to DNA strand displacement and
//! check that the computation survives the mapping.
//!
//! The program is a combinational average `y = (a + b) / 2` (one tap of
//! the paper's moving-average filter): three reactions in the abstract
//! network, a cascade of displacement steps with fuel complexes after
//! compilation.
//!
//! ```sh
//! cargo run --release --example strand_displacement
//! ```

use molseq::crn::{Crn, RateAssignment};
use molseq::dsd::{DsdParams, DsdSystem};
use molseq::kinetics::{CompiledCrn, OdeOptions, SimSpec, Simulation, State};
use molseq::modules::{add, halve};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // abstract program
    let mut formal = Crn::new();
    let a = formal.species("a");
    let b = formal.species("b");
    let s = formal.species("sum");
    let y = formal.species("y");
    add(&mut formal, &[a, b], s)?;
    halve(&mut formal, s, y)?;
    println!("abstract network:\n{formal}");

    // abstract simulation
    let mut init = State::new(&formal);
    init.set(a, 30.0).set(b, 14.0);
    let formal_compiled = CompiledCrn::new(&formal, &SimSpec::default());
    let abstract_trace = Simulation::new(&formal, &formal_compiled)
        .init(&init)
        .options(OdeOptions::default().with_t_end(60.0))
        .run()?;
    let abstract_y = abstract_trace.final_state()[y.index()];

    // compiled to strand displacement
    let dsd = DsdSystem::compile(&formal, RateAssignment::default(), &DsdParams::default())?;
    let cost = dsd.cost();
    println!(
        "compiled to DSD: {} species / {} reactions (from {} / {}), {} fuel complexes",
        cost.compiled.0, cost.compiled.1, cost.formal.0, cost.formal.1, cost.fuels
    );

    let dsd_init = dsd.initial_state(&[30.0, 14.0, 0.0, 0.0]);
    let dsd_compiled = CompiledCrn::new(dsd.crn(), &SimSpec::default());
    let dsd_trace = Simulation::new(dsd.crn(), &dsd_compiled)
        .init(&dsd_init)
        .options(OdeOptions::default().with_t_end(60.0))
        .run()?;
    let dsd_y = dsd_trace.final_state()[dsd.signal(y).index()];

    println!("\n(30 + 14) / 2 = 22");
    println!("abstract network computes  y = {abstract_y:.3}");
    println!("DSD implementation yields  y = {dsd_y:.3}");
    println!(
        "deviation through the compilation: {:+.3}",
        dsd_y - abstract_y
    );
    Ok(())
}
