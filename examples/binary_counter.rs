//! A three-bit ripple-carry binary counter made of chemical reactions:
//! each injected pulse increments the count, carries propagate one bit per
//! clock cycle.
//!
//! ```sh
//! cargo run --release --example binary_counter
//! ```

use molseq::sync::{drive_cycles, BinaryCounter, ClockSpec, CycleResources, RunConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let counter = BinaryCounter::build(3, 60.0, ClockSpec::default())?;
    println!(
        "3-bit counter: {} species, {} reactions",
        counter.system().stats().species,
        counter.system().stats().reactions
    );

    // five pulses, then enough quiet cycles for the carries to ripple
    let pulses = [true, true, true, true, true, false, false, false];
    let samples = counter.pulse_train(&pulses);
    let cycles = samples.len() + 1;
    let run = drive_cycles(
        counter.system(),
        &[("pulse", &samples)],
        cycles,
        &RunConfig::default(),
        CycleResources::default(),
    )?;

    println!("\ncycle | pulse |      b0 |      b1 |      b2 | decoded");
    for k in 0..run.cycles() {
        let pulse = pulses.get(k).copied().unwrap_or(false);
        println!(
            "{k:5} | {:5} | {:7.2} | {:7.2} | {:7.2} | {:7}",
            if pulse { "yes" } else { "" },
            run.register_series("b0")?[k],
            run.register_series("b1")?[k],
            run.register_series("b2")?[k],
            counter.decode(&run, k)?,
        );
    }
    println!(
        "\nfinal count: {} (expected 5 = 0b101)",
        counter.decode(&run, run.cycles() - 1)?
    );
    Ok(())
}
