//! Quickstart: build a two-element delay chain on the synchronous
//! framework, push a value in, and watch it emerge two clock cycles later.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use molseq::kinetics::render_species;
use molseq::sync::{drive_cycles, ClockSpec, CycleResources, RunConfig, SyncCircuit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // y(n) = x(n - 2): two registers in series.
    let mut circuit = SyncCircuit::new(ClockSpec::default());
    let x = circuit.input("x");
    let d1 = circuit.delay("d1", x);
    let d2 = circuit.delay("d2", d1);
    circuit.output("y", d2);
    let system = circuit.compile()?;

    println!(
        "compiled: {} species, {} reactions",
        system.stats().species,
        system.stats().reactions
    );

    // Feed the sample stream 60, 20, 80, 0, 0 — one value per clock cycle.
    let samples = [60.0, 20.0, 80.0, 0.0, 0.0];
    let run = drive_cycles(
        &system,
        &[("x", &samples)],
        7,
        &RunConfig::default(),
        CycleResources::default(),
    )?;

    println!(
        "\nmeasured clock period: {:.2} time units\n",
        run.mean_period().unwrap_or(f64::NAN)
    );
    println!("cycle |      d1 |      d2 |  y (readable)");
    for k in 0..run.cycles() {
        println!(
            "{k:5} | {:7.2} | {:7.2} | {:7.2}",
            run.register_series("d1")?[k],
            run.register_series("d2")?[k],
            run.register_series("y")?[k],
        );
    }

    let clock = system.clock();
    println!("\nclock phases over the whole run:");
    print!(
        "{}",
        render_species(
            run.trace(),
            &[
                (clock.red, "clk.R"),
                (clock.green, "clk.G"),
                (clock.blue, "clk.B")
            ],
            72
        )
    );
    println!("each input value x(k) reappears in the `y` column two cycles later (y[k] = x[k-2])");
    Ok(())
}
