//! From reaction program to concrete DNA: derive the domain-level strand
//! library for an abstract program and assign nucleotide sequences.
//!
//! ```sh
//! cargo run --release --example strand_designer
//! ```

use molseq::crn::Crn;
use molseq::dsd::StrandLibrary;
use molseq::modules::{add, halve};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // the running example: y = (a + b) / 2
    let mut formal = Crn::new();
    let a = formal.species("a");
    let b = formal.species("b");
    let s = formal.species("sum");
    let y = formal.species("y");
    add(&mut formal, &[a, b], s)?;
    halve(&mut formal, s, y)?;

    let library = StrandLibrary::from_formal(&formal)?;
    println!("domain-level specification:\n{}", library.listing());

    let sequences = library.assign_sequences(6, 20, 2026)?;
    println!(
        "assigned {} domain sequences (6 nt toeholds, 20 nt branches)\n",
        sequences.len()
    );
    println!("signal strands, 5'→3':");
    for strand in library.strands() {
        println!("  {:4} {}", strand.name, sequences.render_strand(strand));
    }
    println!(
        "\nexample complement (t0*): {}",
        sequences.complement_of("t0").expect("assigned")
    );
    Ok(())
}
