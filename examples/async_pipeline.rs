//! The companion (IWBDA 2011) scheme: a self-timed pipeline with no clock.
//! A wavefront of quantity flows through delay elements, each hop gated
//! only on the absence indicators, with a scaling operation on the way.
//!
//! ```sh
//! cargo run --release --example async_pipeline
//! ```

use molseq::asynchronous::{AsyncPipeline, HopOp, MeasureConfig};
use molseq::kinetics::render_species;
use molseq::sync::SchemeConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // three elements; the middle hop halves the quantity
    let pipe = AsyncPipeline::build(
        SchemeConfig::default(),
        &[
            HopOp::Identity,
            HopOp::Scale { p: 1, q: 2 },
            HopOp::Identity,
        ],
    )?;
    println!(
        "pipeline: {} elements, {} species, {} reactions",
        pipe.len(),
        pipe.crn().species_count(),
        pipe.crn().reactions().len()
    );

    let x = 80.0;
    let config = MeasureConfig {
        t_end: 120.0,
        ..MeasureConfig::default()
    };
    let trace = pipe.run_wavefront(x, &config)?;

    let mut rows = vec![(pipe.input(), "X (input)")];
    let labels: Vec<String> = (0..pipe.len())
        .map(|i| format!("element {} red", i + 1))
        .collect();
    for (i, label) in labels.iter().enumerate() {
        rows.push((pipe.element(i)[0], label));
    }
    rows.push((pipe.output(), "Y (output)"));
    print!("{}", render_species(&trace, &rows, 96));

    let latency = pipe.measure_latency(x, &config)?;
    println!(
        "input {x} → output {:.2} (expected {}), 95% latency {:.2} time units",
        latency.output_value,
        pipe.expected_output(x),
        latency.t95
    );
    Ok(())
}
