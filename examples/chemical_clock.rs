//! The chemical clock by itself: a one-element delay ring whose three
//! species' concentrations oscillate as non-overlapping phase signals.
//!
//! ```sh
//! cargo run --release --example chemical_clock
//! ```

use molseq::kinetics::{
    estimate_period, render_species, simulate_ode, OdeOptions, Schedule, SimSpec,
};
use molseq::sync::{Clock, SchemeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clock = Clock::build(SchemeConfig::default(), 100.0)?;
    println!("clock network:\n{}", clock.crn());

    let trace = simulate_ode(
        clock.crn(),
        &clock.initial_state(),
        &Schedule::new(),
        &OdeOptions::default()
            .with_t_end(60.0)
            .with_record_interval(0.05),
        &SimSpec::default(),
    )?;

    print!(
        "{}",
        render_species(
            &trace,
            &[
                (clock.red(), "red   phase"),
                (clock.green(), "green phase"),
                (clock.blue(), "blue  phase"),
            ],
            96
        )
    );

    let series = trace.series(clock.red());
    match estimate_period(trace.times(), &series, 50.0) {
        Some(period) => println!("measured period: {period:.3} time units"),
        None => println!("no oscillation detected"),
    }
    Ok(())
}
