//! The chemical clock by itself: a one-element delay ring whose three
//! species' concentrations oscillate as non-overlapping phase signals.
//!
//! ```sh
//! cargo run --release --example chemical_clock
//! ```

use molseq::kinetics::{
    estimate_period, render_species, CompiledCrn, OdeOptions, SimSpec, Simulation,
};
use molseq::sync::{Clock, SchemeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clock = Clock::build(SchemeConfig::default(), 100.0)?;
    println!("clock network:\n{}", clock.crn());

    let compiled = CompiledCrn::new(clock.crn(), &SimSpec::default());
    let trace = Simulation::new(clock.crn(), &compiled)
        .init(&clock.initial_state())
        .options(
            OdeOptions::default()
                .with_t_end(60.0)
                .with_record_interval(0.05),
        )
        .run()?;

    print!(
        "{}",
        render_species(
            &trace,
            &[
                (clock.red(), "red   phase"),
                (clock.green(), "green phase"),
                (clock.blue(), "blue  phase"),
            ],
            96
        )
    );

    let series = trace.series(clock.red());
    match estimate_period(trace.times(), &series, 50.0) {
        Some(period) => println!("measured period: {period:.3} time units"),
        None => println!("no oscillation detected"),
    }
    Ok(())
}
