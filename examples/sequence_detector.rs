//! A molecular finite-state machine: a Moore detector that latches once it
//! has seen two consecutive `1`s in its input stream.
//!
//! ```sh
//! cargo run --release --example sequence_detector
//! ```

use molseq::sync::{ClockSpec, Fsm, RunConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // S0: nothing seen; S1: one `1` seen; S2: "11" detected (sticky)
    let fsm = Fsm::build(ClockSpec::default(), 60.0, &[[0, 1], [0, 2], [2, 2]], 0)?;
    println!(
        "3-state detector: {} species, {} reactions",
        fsm.system().stats().species,
        fsm.system().stats().reactions
    );

    let bits = [true, false, true, true, false, true];
    let (run, states) = fsm.run(&bits, &RunConfig::default())?;

    println!("\ncycle | bit |      s0 |      s1 |      s2 | state");
    for (k, &bit) in bits.iter().enumerate() {
        println!(
            "{k:5} | {:3} | {:7.2} | {:7.2} | {:7.2} | S{}",
            u8::from(bit),
            run.register_series("s0")?[k],
            run.register_series("s1")?[k],
            run.register_series("s2")?[k],
            states[k],
        );
    }
    println!("\nthe machine latched in S2 at cycle 3 (after the bits 1,0,1,1) and stays there");
    Ok(())
}
