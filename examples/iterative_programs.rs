//! The paper's "for/while loop" constructs, run as clocked molecular
//! programs: an iterative multiplier (repeated addition, one iteration per
//! clock cycle) and an iterative base-2 logarithm (count the halvings).
//!
//! ```sh
//! cargo run --release --example iterative_programs
//! ```

use molseq::sync::{ClockSpec, IterativeLog2, IterativeMultiplier, RunConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 25 × 3 by repeated addition
    let mult = IterativeMultiplier::build(ClockSpec::default(), 25.0, 3, 60.0)?;
    println!(
        "multiplier 25 x 3: {} species, {} reactions, {} cycles budgeted",
        mult.system().stats().species,
        mult.system().stats().reactions,
        mult.cycles_needed()
    );
    let run = mult.run_traced(&RunConfig::default())?;
    println!("\ncycle | counter | accumulator");
    for k in 0..run.cycles() {
        println!(
            "{k:5} | {:7.2} | {:11.2}",
            run.register_series("counter")?[k],
            run.register_series("acc")?[k],
        );
    }
    let product = *run.register_series("acc")?.last().expect("cycles ran");
    println!("\nproduct: {product:.2} (exact {})\n", mult.expected());

    // log2(8) by repeated halving
    let log = IterativeLog2::build(ClockSpec::default(), 8.0, 30.0)?;
    println!(
        "log2 loop on 8 units: {} species, {} reactions",
        log.system().stats().species,
        log.system().stats().reactions,
    );
    let iterations = log.run(&RunConfig::default())?;
    println!("iterations counted: {iterations:.2} (log2(8) + 1 = 4)");
    Ok(())
}
